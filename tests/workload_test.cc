// Traffic-engine tests: Spec grammar, per-model determinism and shape,
// back-compat with the legacy uniform generator, arrival processes, lazy
// account funding, and scenario-matrix row invariance.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/system.h"
#include "workload/generator.h"
#include "workload/scenario.h"
#include "workload/traffic.h"

namespace porygon::workload {
namespace {

std::string Fingerprint(const std::vector<tx::Transaction>& txs) {
  std::string s;
  for (const auto& t : txs) {
    s += std::to_string(t.from) + ">" + std::to_string(t.to) + ":" +
         std::to_string(t.amount) + ":" + std::to_string(t.nonce) + ";";
  }
  return s;
}

TEST(WorkloadSpecTest, ParsesAndRoundTrips) {
  for (const char* text : {
           "uniform,accounts:20000,cross:0.2,seed:11",
           "zipf:0.99,accounts:1000000,seed:6",
           "flashcrowd:64,accounts:100000,hot:0.9,rotate:2000,seed:3",
           "contract:4,accounts:50000,contracts:16,seed:2",
           "zipf:1.1,accounts:5000,arrival:bursty,period:20,duty:0.25,"
           "peak:4,seed:1",
           "uniform,accounts:100,arrival:flash,at:10,dur:5,peak:8,seed:1",
       }) {
    Result<Spec> spec = Spec::Parse(text);
    ASSERT_TRUE(spec.ok()) << text;
    // Canonical form re-parses to the same canonical form.
    Result<Spec> again = Spec::Parse(spec->ToString());
    ASSERT_TRUE(again.ok()) << spec->ToString();
    EXPECT_EQ(spec->ToString(), again->ToString()) << text;
  }
}

TEST(WorkloadSpecTest, RejectsBadClauses) {
  for (const char* text : {
           "zipf:-1",               // Negative exponent.
           "unknownmodel",          // Unknown clause.
           "uniform,zipf:0.9",      // Two model clauses.
           "uniform,accounts:1",    // Too-small account space.
           "uniform,hot:1.5",       // Fraction out of range.
           "uniform,amount:9:2",    // lo > hi.
           "contract:1",            // Fewer than 2 keys per call.
           "uniform,arrival:nope",  // Unknown arrival.
           "flashcrowd:500,accounts:100",  // Hot set exceeds accounts.
           "contract:4,accounts:10,contracts:10",  // No user ids left.
       }) {
    Result<Spec> spec = Spec::Parse(text);
    EXPECT_FALSE(spec.ok()) << text;
    if (!spec.ok()) {
      EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << text;
    }
  }
}

TEST(WorkloadModelTest, SameSeedStreamsAreByteIdentical) {
  for (const char* text : {
           "uniform,accounts:20000,cross:0.2,seed:11",
           "zipf:0.99,accounts:1000000,seed:6",
           "flashcrowd:64,accounts:100000,rotate:200,seed:3",
           "contract:4,accounts:50000,contracts:16,seed:2",
       }) {
    Result<Spec> spec = Spec::Parse(text);
    ASSERT_TRUE(spec.ok()) << text;
    auto a = spec->BuildModel();
    auto b = spec->BuildModel();
    EXPECT_EQ(Fingerprint(a->Batch(500)), Fingerprint(b->Batch(500)))
        << text;
    // And a different seed diverges.
    Spec reseeded = *spec;
    reseeded.seed += 1;
    auto c = reseeded.BuildModel();
    EXPECT_NE(Fingerprint(a->Batch(500)), Fingerprint(c->Batch(500)))
        << text;
  }
}

TEST(WorkloadModelTest, UniformSpecReproducesLegacyGeneratorStream) {
  WorkloadOptions legacy;
  legacy.num_accounts = 30'000;
  legacy.shard_bits = 3;
  legacy.cross_shard_ratio = 0.1;
  legacy.zipf_s = 0.6;
  legacy.amount_min = 1;
  legacy.amount_max = 500;
  legacy.seed = 99;
  WorkloadGenerator reference(legacy);

  Result<Spec> spec =
      Spec::Parse("uniform,accounts:30000,cross:0.1,skew:0.6,amount:1:500,"
                  "seed:99");
  ASSERT_TRUE(spec.ok());
  spec->shard_bits = 3;
  auto model = spec->BuildModel();
  EXPECT_EQ(Fingerprint(reference.Batch(2000)),
            Fingerprint(model->Batch(2000)));
}

TEST(WorkloadModelTest, ZipfConcentratesMassOnHotAccounts) {
  Result<Spec> spec = Spec::Parse("zipf:0.99,accounts:1000000,seed:7");
  ASSERT_TRUE(spec.ok());
  auto model = spec->BuildModel();
  const int n = 20'000;
  std::map<state::AccountId, int> hits;
  for (const auto& t : model->Batch(n)) {
    ASSERT_GE(t.from, 1u);
    ASSERT_LE(t.from, 1'000'000u);
    ASSERT_GE(t.to, 1u);
    ASSERT_LE(t.to, 1'000'000u);
    ASSERT_NE(t.from, t.to);
    hits[t.from]++;
    hits[t.to]++;
  }
  // Theory: P(rank 1) = 1/H_{1e6}(0.99) ~ 6%, top-10 ~ 19% per endpoint.
  // Under uniform draw each account would get ~0.004% of the mass.
  int top10 = 0;
  for (state::AccountId id = 1; id <= 10; ++id) {
    auto it = hits.find(id);
    if (it != hits.end()) top10 += it->second;
  }
  const double top10_fraction = static_cast<double>(top10) / (2.0 * n);
  EXPECT_GT(top10_fraction, 0.10);
  EXPECT_LT(top10_fraction, 0.35);
}

TEST(WorkloadModelTest, FlashCrowdRotatesHotSets) {
  Result<Spec> spec =
      Spec::Parse("flashcrowd:64,accounts:100000,hot:0.9,rotate:500,seed:4");
  ASSERT_TRUE(spec.ok());
  FlashCrowdTrafficModel model(*spec);
  // The hot window moves between epochs and stays in the account space.
  std::set<state::AccountId> bases;
  for (uint64_t epoch = 0; epoch < 8; ++epoch) {
    state::AccountId base = model.HotBaseFor(epoch * 500);
    EXPECT_GE(base, 1u);
    EXPECT_LE(base + 64, 100'000u + 1);
    bases.insert(base);
  }
  EXPECT_GT(bases.size(), 4u);
  // Within one epoch, ~90% of receivers land in the 64-account window.
  const state::AccountId base = model.HotBaseFor(0);
  int hot = 0;
  const int n = 499;  // Stay inside epoch 0.
  for (const auto& t : model.Batch(n)) {
    if (t.to >= base && t.to < base + 64) ++hot;
  }
  EXPECT_GT(static_cast<double>(hot) / n, 0.75);
}

TEST(WorkloadModelTest, ContractCallsShareOneContractAccount) {
  Result<Spec> spec =
      Spec::Parse("contract:4,accounts:50000,contracts:16,seed:2");
  ASSERT_TRUE(spec.ok());
  auto model = spec->BuildModel();
  // Each call is contract_keys - 1 = 3 consecutive transfers into one
  // contract id in [1, 16]; the call's explicit read/write set is the
  // union of its transfers' {from, to} pairs: 3 users + the contract.
  auto txs = model->Batch(300);
  for (size_t call = 0; call < txs.size() / 3; ++call) {
    std::set<state::AccountId> rw_set;
    const state::AccountId contract = txs[call * 3].to;
    EXPECT_GE(contract, 1u);
    EXPECT_LE(contract, 16u);
    for (size_t i = 0; i < 3; ++i) {
      const auto& t = txs[call * 3 + i];
      EXPECT_EQ(t.to, contract) << "call " << call;
      EXPECT_GT(t.from, 16u);  // Users live above the contract ids.
      rw_set.insert(t.from);
      rw_set.insert(t.to);
    }
    EXPECT_LE(rw_set.size(), 4u);
  }
}

TEST(WorkloadArrivalTest, ShapesAreDeterministicWithMeanNearOne) {
  for (const char* text : {
           "uniform,arrival:constant",
           "uniform,arrival:bursty,period:20,duty:0.25,peak:3",
           "uniform,arrival:diurnal,period:60,peak:2",
           "uniform,arrival:flash,at:20,dur:10,peak:4",
       }) {
    Result<Spec> spec = Spec::Parse(text);
    ASSERT_TRUE(spec.ok()) << text;
    auto a = spec->BuildArrival();
    auto b = spec->BuildArrival();
    size_t total = 0;
    for (int w = 0; w < 24; ++w) {
      const double t0 = w * 5.0;
      EXPECT_EQ(a->CountFor(t0, 5.0, 100.0), b->CountFor(t0, 5.0, 100.0))
          << text;
      total += a->CountFor(t0, 5.0, 100.0);
    }
    // 24 windows x 5 s at base 100 TPS: the long-run mean must stay near
    // the base rate (flash adds a bounded spike on top).
    EXPECT_GT(total, 10'000u) << text;
    EXPECT_LT(total, 16'000u) << text;
  }
  // The flash spike actually fires: the covering window offers peak x.
  ConstantArrival flat;
  FlashArrival flash(20.0, 10.0, 4.0);
  EXPECT_EQ(flat.CountFor(0.0, 5.0, 100.0), 500u);
  EXPECT_EQ(flash.CountFor(20.0, 5.0, 100.0), 2000u);
  EXPECT_EQ(flash.CountFor(0.0, 5.0, 100.0), 500u);
}

TEST(WorkloadLazyFundingTest, MillionAccountsBootstrapAndCommit) {
  core::SystemOptions opt;
  opt.params.shard_bits = 2;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 500;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 40;
  opt.oc_size = 8;
  opt.seed = 13;
  core::PorygonSystem sys(opt);
  // O(1): no Merkle leaves materialize here.
  sys.CreateAccountsLazy(1'000'000, 1'000'000);
  EXPECT_EQ(sys.canonical_state().TotalAccountCount(), 0u);
  // Untouched ids read the declared balance, but have no leaf: membership
  // stays NotFound, so absence proofs remain valid.
  EXPECT_EQ(sys.canonical_state().GetOrDefault(999'999).balance, 1'000'000u);
  EXPECT_FALSE(sys.canonical_state().GetAccount(999'999).ok());
  EXPECT_EQ(sys.canonical_state().GetOrDefault(1'000'001).balance, 0u);

  Result<Spec> spec = Spec::Parse("zipf:0.9,accounts:1000000,seed:6");
  ASSERT_TRUE(spec.ok());
  spec->shard_bits = opt.params.shard_bits;
  auto model = spec->BuildModel();
  for (int r = 0; r < 8; ++r) {
    sys.SubmitBatch(model->Batch(400));
    sys.Run(1);
  }
  const core::SystemMetrics m = sys.metrics();
  EXPECT_GT(m.committed_txs(), 0u);
  // Storage replay re-executes against the canonical state; a mismatch
  // would mean the implicit-account rule diverged between views.
  EXPECT_EQ(m.replay_mismatches(), 0u);
  // Touched accounts materialized; the vast majority did not.
  EXPECT_GT(sys.canonical_state().TotalAccountCount(), 0u);
  EXPECT_LT(sys.canonical_state().TotalAccountCount(), 20'000u);
}

TEST(WorkloadLazyFundingTest, LazyRunsConserveValueDeterministically) {
  // Lazy funding is not promised to be timing-identical to eager funding
  // (absence proofs and membership proofs have different wire sizes, and
  // network latency is size-dependent), but it must be deterministic for
  // a given seed and must conserve value: transfers within the declared
  // set never mint or burn.
  auto run = [](bool lazy) {
    core::SystemOptions opt;
    opt.params.shard_bits = 1;
    opt.params.witness_threshold = 2;
    opt.params.execution_threshold = 2;
    opt.params.block_tx_limit = 200;
    opt.num_storage_nodes = 2;
    opt.num_stateless_nodes = 26;
    opt.oc_size = 4;
    opt.seed = 5;
    auto sys = std::make_unique<core::PorygonSystem>(opt);
    if (lazy) {
      sys->CreateAccountsLazy(5'000, 10'000);
    } else {
      sys->CreateAccounts(5'000, 10'000);
    }
    Result<Spec> spec = Spec::Parse("uniform,accounts:5000,seed:3");
    EXPECT_TRUE(spec.ok());
    spec->shard_bits = opt.params.shard_bits;
    auto model = spec->BuildModel();
    for (int r = 0; r < 6; ++r) {
      sys->SubmitBatch(model->Batch(150));
      sys->Run(1);
    }
    return sys;
  };
  auto a = run(true);
  auto b = run(true);
  EXPECT_GT(a->metrics().committed_txs(), 0u);
  EXPECT_EQ(a->metrics().committed_txs(), b->metrics().committed_txs());
  EXPECT_EQ(a->metrics().replay_mismatches(), 0u);
  uint64_t total = 0;
  for (state::AccountId id = 1; id <= 5'000; ++id) {
    const state::Account x = a->canonical_state().GetOrDefault(id);
    const state::Account y = b->canonical_state().GetOrDefault(id);
    ASSERT_EQ(x.balance, y.balance) << id;
    ASSERT_EQ(x.nonce, y.nonce) << id;
    total += x.balance;
  }
  EXPECT_EQ(total, 5'000u * 10'000u);
  // The eager path still works and conserves the same total.
  auto eager = run(false);
  uint64_t eager_total = 0;
  for (state::AccountId id = 1; id <= 5'000; ++id) {
    eager_total += eager->canonical_state().GetOrDefault(id).balance;
  }
  EXPECT_EQ(eager_total, 5'000u * 10'000u);
}

TEST(WorkloadScenarioTest, RowsAreThreadInvariant) {
  ScenarioCell cell;
  cell.workload = "zipf:0.99,accounts:1000000,seed:11";
  ScenarioOptions opt;
  opt.rounds = 2;
  opt.offered_tps = 150;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.block_tx_limit = 300;

  opt.worker_threads = 0;
  Result<std::string> serial = RunScenarioCell(cell, opt);
  ASSERT_TRUE(serial.ok()) << serial.status().ToString();
  opt.worker_threads = 4;
  Result<std::string> threaded = RunScenarioCell(cell, opt);
  ASSERT_TRUE(threaded.ok()) << threaded.status().ToString();
  EXPECT_EQ(*serial, *threaded);
  EXPECT_NE(serial->find("\"committed_txs\""), std::string::npos);
}

TEST(WorkloadScenarioTest, FaultAndAdversaryCellsRun) {
  ScenarioOptions opt;
  opt.rounds = 2;
  opt.offered_tps = 100;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.block_tx_limit = 200;

  ScenarioCell faulty;
  faulty.workload = "uniform,accounts:2000,seed:11";
  faulty.faults = "loss:0.02,jitter:300,seed:5";
  Result<std::string> frow = RunScenarioCell(faulty, opt);
  ASSERT_TRUE(frow.ok()) << frow.status().ToString();
  EXPECT_NE(frow->find("\"faults\":\"loss:0.02"), std::string::npos);

  ScenarioCell adversarial;
  adversarial.workload = "uniform,accounts:2000,seed:11";
  adversarial.adversary = "stateless:equivocate,alpha:0.2,seed:9";
  Result<std::string> arow = RunScenarioCell(adversarial, opt);
  ASSERT_TRUE(arow.ok()) << arow.status().ToString();
  EXPECT_NE(arow->find("\"evidence\":"), std::string::npos);

  ScenarioCell bad;
  bad.workload = "zipf:-3";
  EXPECT_FALSE(RunScenarioCell(bad, opt).ok());
}

}  // namespace
}  // namespace porygon::workload
