// Additional storage-engine coverage: Env implementations, SSTable edge
// cases, Db statistics, and failure paths.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/rng.h"
#include "storage/db.h"
#include "storage/env.h"
#include "storage/sstable.h"

namespace porygon::storage {
namespace {

TEST(MemEnvTest, FileLifecycle) {
  MemEnv env;
  EXPECT_FALSE(env.FileExists("a"));
  {
    auto f = env.NewWritableFile("a");
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(ToBytes("hello")).ok());
    ASSERT_TRUE((*f)->Sync().ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  EXPECT_TRUE(env.FileExists("a"));
  auto data = env.ReadFile("a");
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, ToBytes("hello"));

  ASSERT_TRUE(env.RenameFile("a", "b").ok());
  EXPECT_FALSE(env.FileExists("a"));
  EXPECT_TRUE(env.FileExists("b"));

  ASSERT_TRUE(env.RemoveFile("b").ok());
  EXPECT_FALSE(env.FileExists("b"));
  EXPECT_FALSE(env.ReadFile("b").ok());
}

TEST(MemEnvTest, ListDirFiltersByDirectory) {
  MemEnv env;
  (void)env.NewWritableFile("dir/x");
  (void)env.NewWritableFile("dir/y");
  (void)env.NewWritableFile("other/z");
  (void)env.NewWritableFile("toplevel");
  auto names = env.ListDir("dir");
  ASSERT_TRUE(names.ok());
  EXPECT_EQ(names->size(), 2u);

  auto top = env.ListDir("");
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 1u);
  EXPECT_EQ((*top)[0], "toplevel");
}

TEST(MemEnvTest, RandomAccessReadsRanges) {
  MemEnv env;
  {
    auto f = env.NewWritableFile("f");
    ASSERT_TRUE((*f)->Append(ToBytes("0123456789")).ok());
  }
  auto ra = env.NewRandomAccessFile("f");
  ASSERT_TRUE(ra.ok());
  Bytes out;
  ASSERT_TRUE((*ra)->Read(3, 4, &out).ok());
  EXPECT_EQ(out, ToBytes("3456"));
  // Reads past EOF are short, not errors.
  ASSERT_TRUE((*ra)->Read(8, 10, &out).ok());
  EXPECT_EQ(out, ToBytes("89"));
  ASSERT_TRUE((*ra)->Read(100, 4, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(*(*ra)->Size(), 10u);
}

TEST(MemEnvTest, TotalBytesTracksContent) {
  MemEnv env;
  EXPECT_EQ(env.TotalBytes(), 0u);
  auto f = env.NewWritableFile("f");
  ASSERT_TRUE((*f)->Append(ToBytes("12345")).ok());
  EXPECT_EQ(env.TotalBytes(), 5u);
}

TEST(PosixEnvTest, RoundTripInTempDir) {
  Env* env = Env::Default();
  std::string dir =
      (std::filesystem::temp_directory_path() / "porygon_env_test").string();
  ASSERT_TRUE(env->CreateDirIfMissing(dir).ok());
  std::string path = dir + "/file";
  {
    auto f = env->NewWritableFile(path);
    ASSERT_TRUE(f.ok());
    ASSERT_TRUE((*f)->Append(ToBytes("posix")).ok());
    ASSERT_TRUE((*f)->Close().ok());
  }
  auto data = env->ReadFile(path);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(*data, ToBytes("posix"));
  auto listing = env->ListDir(dir);
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing->size(), 1u);
  ASSERT_TRUE(env->RemoveFile(path).ok());
}

TEST(PosixEnvTest, DbWorksOnRealFiles) {
  std::string dir =
      (std::filesystem::temp_directory_path() / "porygon_db_test").string();
  std::filesystem::remove_all(dir);
  {
    auto db = Db::Open(Env::Default(), dir);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    ASSERT_TRUE((*db)->Put(ToBytes("durable"), ToBytes("yes")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
  }
  {
    auto db = Db::Open(Env::Default(), dir);
    ASSERT_TRUE(db.ok());
    auto v = (*db)->Get(ToBytes("durable"));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, ToBytes("yes"));
  }
  std::filesystem::remove_all(dir);
}

TEST(SstableTest, ForEachEarlyStop) {
  MemEnv env;
  SstableBuilder builder(&env, "t.sst");
  for (int i = 0; i < 100; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%03d", i);
    ASSERT_TRUE(
        builder.Add(ToBytes(key), i, ValueType::kValue, ToBytes("v")).ok());
  }
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SstableReader::Open(&env, "t.sst");
  ASSERT_TRUE(reader.ok());
  int visited = 0;
  ASSERT_TRUE((*reader)
                  ->ForEach([&](const SstableReader::Entry&) {
                    return ++visited < 10;
                  })
                  .ok());
  EXPECT_EQ(visited, 10);
}

TEST(SstableTest, EmptyTableRoundTrips) {
  MemEnv env;
  SstableBuilder builder(&env, "empty.sst");
  ASSERT_TRUE(builder.Finish().ok());
  auto reader = SstableReader::Open(&env, "empty.sst");
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->entry_count(), 0u);
  bool tombstone;
  EXPECT_FALSE((*reader)->Get(ToBytes("any"), &tombstone).ok());
}

TEST(DbTest, StatsReflectShape) {
  MemEnv env;
  DbOptions options;
  options.l0_compaction_trigger = 100;  // No automatic compaction.
  auto db = Db::Open(&env, "db", options);
  auto s0 = (*db)->GetStats();
  EXPECT_EQ(s0.memtable_entries, 0u);
  EXPECT_EQ(s0.l0_tables, 0);
  EXPECT_FALSE(s0.has_l1);

  ASSERT_TRUE((*db)->Put(ToBytes("a"), ToBytes("1")).ok());
  ASSERT_TRUE((*db)->Put(ToBytes("b"), ToBytes("2")).ok());
  auto s1 = (*db)->GetStats();
  EXPECT_EQ(s1.memtable_entries, 2u);
  EXPECT_EQ(s1.sequence, 2u);

  ASSERT_TRUE((*db)->Flush().ok());
  auto s2 = (*db)->GetStats();
  EXPECT_EQ(s2.memtable_entries, 0u);
  EXPECT_EQ(s2.l0_tables, 1);
  EXPECT_GT(s2.table_bytes, 0u);

  ASSERT_TRUE((*db)->CompactAll().ok());
  auto s3 = (*db)->GetStats();
  EXPECT_EQ(s3.l0_tables, 0);
  EXPECT_TRUE(s3.has_l1);
}

TEST(DbTest, EmptyFlushIsNoop) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_EQ((*db)->GetStats().l0_tables, 0);
}

TEST(DbTest, ScanWithOpenEnds) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  for (char c = 'a'; c <= 'e'; ++c) {
    std::string key(1, c);
    ASSERT_TRUE((*db)->Put(ToBytes(key), ToBytes("v")).ok());
  }
  int count = 0;
  // Empty start = from beginning; empty end = to the last key.
  ASSERT_TRUE(
      (*db)->Scan(ByteView(), ByteView(), [&](ByteView, ByteView) { ++count; })
          .ok());
  EXPECT_EQ(count, 5);
  count = 0;
  ASSERT_TRUE((*db)
                  ->Scan(ToBytes("c"), ByteView(),
                         [&](ByteView, ByteView) { ++count; })
                  .ok());
  EXPECT_EQ(count, 3);  // c, d, e.
}

TEST(DbTest, LargeValuesSurviveFlushAndCompact) {
  MemEnv env;
  Rng rng(8);
  auto db = Db::Open(&env, "db");
  Bytes big = rng.NextBytes(200'000);  // Larger than the arena block size.
  ASSERT_TRUE((*db)->Put(ToBytes("big"), big).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->CompactAll().ok());
  auto v = (*db)->Get(ToBytes("big"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, big);
}

}  // namespace
}  // namespace porygon::storage
