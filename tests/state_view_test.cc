// PartialState tests: a stateless node reconstructing a shard subtree from
// Merkle proofs must read the same values and, after identical writes,
// produce the same root as a full replica — the heart of stateless
// execution (§IV-C1(c)).

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/execution.h"
#include "state/sharded_state.h"
#include "state/view.h"

namespace porygon::state {
namespace {

TEST(PartialStateTest, InjectedAccountsReadBack) {
  ShardedState full(1);
  full.PutAccount(2, {100, 1});
  full.PutAccount(4, {200, 0});

  PartialState partial(1, 0, full.ShardRoot(0));
  ASSERT_TRUE(partial.AddOwnAccount(2, true, {100, 1}, full.ProveAccount(2))
                  .ok());
  ASSERT_TRUE(partial.AddOwnAccount(4, true, {200, 0}, full.ProveAccount(4))
                  .ok());
  EXPECT_EQ(partial.GetOrDefault(2).balance, 100u);
  EXPECT_EQ(partial.GetOrDefault(4).balance, 200u);
  EXPECT_EQ(partial.ShardRoot(0), full.ShardRoot(0));
}

TEST(PartialStateTest, BadProofRejected) {
  ShardedState full(1);
  full.PutAccount(2, {100, 1});
  PartialState partial(1, 0, full.ShardRoot(0));
  // Claim a different balance than proven.
  EXPECT_FALSE(
      partial.AddOwnAccount(2, true, {999, 1}, full.ProveAccount(2)).ok());
  // Claim presence of an absent account.
  EXPECT_FALSE(
      partial.AddOwnAccount(4, true, {5, 0}, full.ProveAccount(4)).ok());
}

TEST(PartialStateTest, AbsenceProofAllowsCreation) {
  ShardedState full(1);
  full.PutAccount(2, {100, 0});
  PartialState partial(1, 0, full.ShardRoot(0));
  ASSERT_TRUE(partial.AddOwnAccount(2, true, {100, 0}, full.ProveAccount(2))
                  .ok());
  ASSERT_TRUE(
      partial.AddOwnAccount(6, false, {}, full.ProveAccount(6)).ok());

  // Write the fresh account on both sides; roots must match.
  partial.PutAccountBatch(0, {{6, {42, 0}}});
  full.PutAccount(6, {42, 0});
  EXPECT_EQ(partial.ShardRoot(0), full.ShardRoot(0));
}

TEST(PartialStateTest, ForeignAccountsVerifiedAgainstTheirShardRoot) {
  ShardedState full(1);
  full.PutAccount(3, {700, 2});  // Shard 1.
  PartialState partial(1, 0, full.ShardRoot(0));
  ASSERT_TRUE(partial
                  .AddForeignAccount(3, true, {700, 2}, full.ProveAccount(3),
                                     full.ShardRoot(1))
                  .ok());
  EXPECT_EQ(partial.GetOrDefault(3).balance, 700u);
  // Wrong root rejected.
  PartialState p2(1, 0, full.ShardRoot(0));
  EXPECT_FALSE(p2.AddForeignAccount(3, true, {700, 2}, full.ProveAccount(3),
                                    crypto::ZeroHash())
                   .ok());
}

TEST(PartialStateTest, StatelessExecutionMatchesFullReplica) {
  // Drive the real ShardExecutor over both views with a mixed workload.
  Rng rng(4242);
  ShardedState full(1);
  for (uint64_t id = 0; id < 40; ++id) {
    full.PutAccount(id, {1000 + id, 0});
  }
  ShardedState replica(1);
  for (uint64_t id = 0; id < 40; ++id) {
    replica.PutAccount(id, {1000 + id, 0});
  }

  core::ExecutionInput in;
  in.shard = 0;
  for (int i = 0; i < 6; ++i) {
    tx::Transaction t;
    t.from = 2 * (i + 1);        // Even: shard 0.
    t.to = 2 * (i + 7);
    t.amount = 10;
    t.nonce = 0;
    in.intra_shard.push_back(t);
  }
  {
    tx::Transaction t;
    t.from = 8;   // Shard 0 (nonce advanced below by intra? no: 8 used once).
    t.to = 3;     // Shard 1: cross-shard.
    t.amount = 5;
    t.nonce = 1;  // Its intra tx above (from=8) runs first with nonce 0.
    in.cross_shard.push_back(t);
  }
  in.updates = {{20, {7777, 3}}};

  // Stateless view: proofs for every touched own-shard account + foreign.
  PartialState partial(1, 0, full.ShardRoot(0));
  for (uint64_t id : {2ull, 4ull, 6ull, 8ull, 10ull, 12ull, 14ull, 16ull,
                      18ull, 20ull, 22ull, 24ull, 26ull}) {
    auto acc = full.GetAccount(id);
    ASSERT_TRUE(
        partial.AddOwnAccount(id, acc.ok(), acc.ok() ? *acc : Account{},
                              full.ProveAccount(id))
            .ok())
        << id;
  }
  ASSERT_TRUE(partial
                  .AddForeignAccount(3, true, full.GetOrDefault(3),
                                     full.ProveAccount(3), full.ShardRoot(1))
                  .ok());

  auto r_full = core::ShardExecutor::Execute(&replica, in);
  auto r_partial = core::ShardExecutor::Execute(&partial, in);

  EXPECT_EQ(r_full.intra_applied, r_partial.intra_applied);
  EXPECT_EQ(r_full.cross_pre_executed, r_partial.cross_pre_executed);
  EXPECT_EQ(r_full.shard_root, r_partial.shard_root);
  ASSERT_EQ(r_full.cross_updates.size(), r_partial.cross_updates.size());
  for (size_t i = 0; i < r_full.cross_updates.size(); ++i) {
    EXPECT_EQ(r_full.cross_updates[i], r_partial.cross_updates[i]);
  }
}

}  // namespace
}  // namespace porygon::state
