// Bandwidth ledger + per-round critical-path analyzer (obs/critical_path):
// queueing delay accounted separately from transmission time, synthetic
// bottleneck attribution, thread-count invariance of the round reports,
// the trace-sampling timing invariant, and the fan-in diagnosis the
// analyzer was built for (the OC leader's downlink absorbing witness and
// exec-result fan-in).

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/system.h"
#include "net/dissemination.h"
#include "net/event_queue.h"
#include "net/network.h"
#include "obs/critical_path.h"
#include "workload/generator.h"

namespace porygon {
namespace {

// --- Net-level ledger -------------------------------------------------------

TEST(CriticalPathTest, QueueingDelaySeparatedFromTransmission) {
  net::EventQueue events;
  net::SimNetwork net(&events, Rng(1));
  // 1 MB/s uplink sender; receiver with a 10x slower downlink, so arrivals
  // queue on the downlink while sends queue on the uplink.
  const net::NodeId a = net.AddNode({1e6, 1e6}, "client");
  const net::NodeId b = net.AddNode({1e6, 1e5}, "server");
  net.SetLatency(500, 0);
  net.SetHandler(b, [](const net::Message&) {});

  // Two back-to-back 1000-byte sends: tx time 1000 us each, so the second
  // waits exactly one transmission on the uplink.
  for (int i = 0; i < 2; ++i) {
    net::Message m;
    m.from = a;
    m.to = b;
    m.kind = 1;
    m.wire_size = 1000;
    net.Send(std::move(m));
  }
  events.RunUntilIdle();

  const net::LinkActivity& up = net.ActivityFor(a);
  EXPECT_EQ(up.bytes_up, 2000u);
  EXPECT_EQ(up.msgs_up, 2u);
  EXPECT_EQ(up.busy_up_us, 2000);   // Two transmissions.
  EXPECT_EQ(up.queue_up_us, 1000);  // Second send waited out the first.

  // Downlink: rx = 10,000 us each. First arrives at 1500 (queue 0); the
  // second arrives at 2500 while the downlink is busy until 11,500.
  const net::LinkActivity& down = net.ActivityFor(b);
  EXPECT_EQ(down.bytes_down, 2000u);
  EXPECT_EQ(down.msgs_down, 2u);
  EXPECT_EQ(down.busy_down_us, 20000);
  EXPECT_EQ(down.queue_down_us, 9000);
  EXPECT_EQ(net.RoleName(a), "client");
  EXPECT_EQ(net.RoleName(b), "server");
}

TEST(CriticalPathTest, SyntheticBottleneckNamesDominantEdge) {
  net::EventQueue events;
  net::SimNetwork net(&events, Rng(1));
  const net::NodeId a = net.AddNode({1e6, 1e6}, "client");
  const net::NodeId b = net.AddNode({1e6, 1e5}, "server");
  net.SetLatency(500, 0);
  net.SetHandler(b, [](const net::Message&) {});
  for (int i = 0; i < 20; ++i) {
    net::Message m;
    m.from = a;
    m.to = b;
    m.kind = 1;
    m.wire_size = 1000;
    net.Send(std::move(m));
  }
  events.RunUntilIdle();

  // Build the round window straight off the cumulative ledger (baseline
  // zero) and let the analyzer attribute it: the server's downlink is 10x
  // slower than everything else, so it must be named dominant.
  obs::CriticalPathAnalyzer cp;
  std::vector<obs::LinkWindow> links;
  const net::LinkActivity& up = net.ActivityFor(a);
  const net::LinkActivity& down = net.ActivityFor(b);
  links.push_back({"client.uplink", up.bytes_up, up.queue_up_us,
                   up.busy_up_us});
  links.push_back({"server.downlink", down.bytes_down, down.queue_down_us,
                   down.busy_down_us});
  cp.BeginRound(1, 0);
  const obs::RoundReport* rep = cp.CommitRound(1, events.now(), links);
  ASSERT_NE(rep, nullptr);
  EXPECT_EQ(rep->dominant_edge, "server.downlink");
  EXPECT_EQ(rep->dominant_segment, "downlink_queue");
  // The slow downlink was busy essentially the whole window.
  EXPECT_GT(rep->dominant_edge_share_pm, 900u);
  EXPECT_EQ(rep->downlink_queue_us, down.queue_down_us);
  EXPECT_EQ(rep->uplink_queue_us, up.queue_up_us);
  // Deterministic JSON carries the attribution.
  const std::string json = rep->ToJson();
  EXPECT_NE(json.find("\"dominant_edge\":\"server.downlink\""),
            std::string::npos);
  EXPECT_NE(json.find("\"dominant_segment\":\"downlink_queue\""),
            std::string::npos);
}

TEST(CriticalPathTest, InflightHighWatermarkTracksAndResets) {
  net::EventQueue events;
  net::SimNetwork net(&events, Rng(1));
  const net::NodeId a = net.AddNode({1e6, 1e6}, "client");
  const net::NodeId b = net.AddNode({1e6, 1e6}, "server");
  net.SetLatency(500, 0);
  net.SetHandler(b, [](const net::Message&) {});
  for (int i = 0; i < 5; ++i) {
    net::Message m;
    m.from = a;
    m.to = b;
    m.kind = 1;
    m.wire_size = 100;
    net.Send(std::move(m));
  }
  EXPECT_EQ(net.InflightFor("server"), 5u);
  EXPECT_EQ(net.InflightHwmFor("server"), 5u);
  events.RunUntilIdle();
  EXPECT_EQ(net.InflightFor("server"), 0u);
  EXPECT_EQ(net.InflightHwmFor("server"), 5u);  // Sticky until reset.
  net.ResetInflightHighWatermarks();
  EXPECT_EQ(net.InflightHwmFor("server"), 0u);
}

// --- System-level -----------------------------------------------------------

struct SysArtifacts {
  std::string reports_json;
  std::string metrics_json;
  std::string dominant_edge;
  double sim_seconds = 0;
  crypto::Hash256 global_root{};
  size_t report_count = 0;
};

SysArtifacts RunCompact(int worker_threads, bool trace = false,
                        core::PorygonSystem** keep = nullptr) {
  core::SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.blocks_per_shard_round = 2;
  opt.seed = 33;
  opt.worker_threads = worker_threads;
  opt.trace.enabled = trace;
  opt.trace.sample_transactions = 8;

  auto* sys = new core::PorygonSystem(opt);
  sys->CreateAccounts(60, 10'000);
  Rng rng(99);
  std::map<uint64_t, uint64_t> nonces;
  for (int i = 0; i < 80; ++i) {
    uint64_t from = 1 + rng.NextBelow(60);
    uint64_t to = 1 + rng.NextBelow(60);
    if (from == to) continue;
    tx::Transaction t;
    t.from = from;
    t.to = to;
    t.amount = 1;
    t.nonce = nonces[from];
    if (sys->SubmitTransaction(t).ok()) ++nonces[from];
  }
  sys->Run(8);

  SysArtifacts out;
  out.reports_json = sys->critical_path().ReportsJson();
  out.metrics_json = sys->metrics().ToJson();
  out.dominant_edge = sys->critical_path().DominantEdgeMode();
  out.sim_seconds = sys->sim_seconds();
  out.global_root = sys->canonical_state().GlobalRoot();
  out.report_count = sys->critical_path().reports().size();
  if (keep != nullptr) {
    *keep = sys;
  } else {
    delete sys;
  }
  return out;
}

TEST(CriticalPathTest, RoundReportsAreThreadInvariant) {
  unsetenv("PORYGON_THREADS");
  const SysArtifacts serial = RunCompact(0);
  ASSERT_GE(serial.report_count, 8u);
  // Every report names a dominant segment and edge.
  EXPECT_NE(serial.reports_json.find("\"dominant_segment\":\""),
            std::string::npos);
  EXPECT_NE(serial.reports_json.find("\"dominant_edge\":\""),
            std::string::npos);
  // The ledger series and windowed gauges made it into the export.
  EXPECT_NE(serial.metrics_json.find("net.downlink_queue_us"),
            std::string::npos);
  EXPECT_NE(serial.metrics_json.find("net.queue_delay_seconds"),
            std::string::npos);
  EXPECT_NE(serial.metrics_json.find("net.link_utilization_pm"),
            std::string::npos);
  EXPECT_NE(serial.metrics_json.find("net.inflight_hwm"), std::string::npos);
  EXPECT_NE(serial.metrics_json.find("sim.event_queue_depth_hwm"),
            std::string::npos);
  EXPECT_NE(serial.metrics_json.find("\"role\":\"oc_leader\""),
            std::string::npos);

  for (int threads : {1, 4}) {
    const SysArtifacts run = RunCompact(threads);
    EXPECT_EQ(run.reports_json, serial.reports_json) << threads << " threads";
    EXPECT_EQ(run.metrics_json, serial.metrics_json) << threads << " threads";
    EXPECT_EQ(run.sim_seconds, serial.sim_seconds) << threads << " threads";
  }
}

// Satellite: the TraceContext relay tail is observability metadata, not
// protocol traffic — enabling trace sampling must leave every modeled
// departure/delivery time, and therefore every sim-derived export, byte
// identical (DESIGN.md "Bandwidth ledger & critical path").
TEST(CriticalPathTest, TraceSamplingLeavesTimingByteIdentical) {
  unsetenv("PORYGON_THREADS");
  const SysArtifacts untraced = RunCompact(0, /*trace=*/false);
  const SysArtifacts traced = RunCompact(0, /*trace=*/true);
  EXPECT_EQ(traced.metrics_json, untraced.metrics_json);
  EXPECT_EQ(traced.reports_json, untraced.reports_json);
  EXPECT_EQ(traced.sim_seconds, untraced.sim_seconds);
  EXPECT_EQ(traced.global_root, untraced.global_root);
}

TEST(CriticalPathTest, MarksFromSpansMatchDirectMarks) {
  unsetenv("PORYGON_THREADS");
  core::PorygonSystem* sys = nullptr;
  (void)RunCompact(0, /*trace=*/true, &sys);
  ASSERT_NE(sys, nullptr);
  const auto& reports = sys->critical_path().reports();
  ASSERT_FALSE(reports.empty());
  // The analyzer's direct marks and the round trace lane record the same
  // graph; walking the exported spans reproduces the marks exactly.
  size_t checked = 0;
  for (const obs::RoundReport& rep : reports) {
    const obs::RoundMarks from_spans = obs::CriticalPathAnalyzer::MarksFromSpans(
        sys->tracer()->spans(), rep.marks.round);
    EXPECT_EQ(from_spans.start, rep.marks.start) << rep.marks.round;
    EXPECT_EQ(from_spans.commit, rep.marks.commit) << rep.marks.round;
    EXPECT_EQ(from_spans.witness_end, rep.marks.witness_end)
        << rep.marks.round;
    EXPECT_EQ(from_spans.decision, rep.marks.decision) << rep.marks.round;
    ++checked;
  }
  EXPECT_GE(checked, 8u);
  // The utilization counter tracks were exported as Perfetto "C" events.
  const std::string trace_json = sys->tracer()->ExportChromeJson();
  EXPECT_NE(trace_json.find("\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace_json.find("util_pm.oc_leader.downlink"), std::string::npos);
  delete sys;
}

// The diagnosis the analyzer exists for (ROADMAP item 1): under per-shard
// fan-in at scale, the OC leader's 1 MB/s downlink absorbs the witness
// bundles and exec results of every shard and becomes the dominant edge.
core::SystemOptions FanInOpts() {
  core::SystemOptions opt;
  opt.params.shard_bits = 5;  // 32 shards of fan-in (the fig7a top cell).
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 200;
  opt.params.storage_connections = 2;
  // Make storage links fat so the sharded fan-in, not the storage plane,
  // is the experiment variable (the fig7a sweep holds storage fixed too).
  opt.params.storage_bps = 1e9;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 96;  // 3 per shard keeps the test fast.
  opt.oc_size = 8;
  opt.blocks_per_shard_round = 2;
  opt.seed = 42;
  return opt;
}

void RunFanIn(core::PorygonSystem* sys) {
  const uint64_t accounts = 100'000;
  sys->CreateAccountsLazy(accounts, 1'000'000);
  workload::WorkloadGenerator gen({.num_accounts = accounts,
                                   .shard_bits = 5,
                                   .cross_shard_ratio = 0.1,
                                   .seed = 7});
  const size_t per_round = 2 * 200 * (1u << 5);
  for (int r = 0; r < 10; ++r) {
    sys->SubmitBatch(gen.Batch(per_round));
    sys->Run(1);
  }
}

TEST(CriticalPathTest, LeaderDownlinkDominatesUnderFanIn) {
  unsetenv("PORYGON_THREADS");
  core::PorygonSystem sys(FanInOpts());
  RunFanIn(&sys);

  const obs::CriticalPathAnalyzer& cp = sys.critical_path();
  ASSERT_FALSE(cp.reports().empty());
  EXPECT_EQ(cp.DominantEdgeMode(), "oc_leader.downlink");
  EXPECT_EQ(cp.DominantSegmentMode(), "downlink_queue");
  // The bottleneck carries a meaningful utilization figure: ~40% of the
  // window in steady-state rounds (warmup rounds dilute the mean).
  EXPECT_GT(cp.MeanUtilization("oc_leader.downlink"), 0.25);
  ASSERT_NE(cp.latest(), nullptr);
  EXPECT_GT(cp.latest()->dominant_edge_share_pm, 300u);
}

// The fix for that diagnosis: the same deployment under tree dissemination
// routes per-shard fan-in through aggregation relays, so the leader's
// downlink stops being the modal dominant edge and its utilization falls
// well below the star's (ISSUE: break the OC fan-in wall). Relay duty is
// attributed to its own node role in the ledger exports.
TEST(CriticalPathTest, TreeDisseminationRelievesLeaderDownlink) {
  unsetenv("PORYGON_THREADS");
  core::SystemOptions direct_opt = FanInOpts();
  core::PorygonSystem direct(direct_opt);
  RunFanIn(&direct);
  const double star_util =
      direct.critical_path().MeanUtilization("oc_leader.downlink");

  core::SystemOptions tree_opt = FanInOpts();
  auto spec = net::DisseminationSpec::Parse("tree");
  ASSERT_TRUE(spec.ok());
  tree_opt.dissemination = *spec;
  core::PorygonSystem tree(tree_opt);
  RunFanIn(&tree);

  const obs::CriticalPathAnalyzer& cp = tree.critical_path();
  ASSERT_FALSE(cp.reports().empty());
  EXPECT_NE(cp.DominantEdgeMode(), "oc_leader.downlink");
  // With this deployment's tiny 3-node EC cohorts the per-shard aggregates
  // still save ~40% of the leader's downlink (full 10-node cohorts, as in
  // fig7a, cut it by ~2.6x).
  EXPECT_LT(cp.MeanUtilization("oc_leader.downlink"), star_util * 0.75);
  // Aggregation still moves the bits somewhere useful: the run commits.
  EXPECT_GT(tree.metrics().committed_txs(), 0u);
  // Relay duty shows up as its own role in the per-role exports.
  EXPECT_NE(tree.metrics().ToJson().find("\"role\":\"relay\""),
            std::string::npos);
}

}  // namespace
}  // namespace porygon
