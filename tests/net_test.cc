// Discrete-event queue and network fabric tests: determinism, bandwidth
// serialization, latency, crash/drop behaviour, traffic accounting.

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "net/event_queue.h"
#include "net/network.h"

namespace porygon::net {
namespace {

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(30, [&] { order.push_back(3); });
  q.ScheduleAt(10, [&] { order.push_back(1); });
  q.ScheduleAt(20, [&] { order.push_back(2); });
  q.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30);
}

TEST(EventQueueTest, EqualTimesRunInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.ScheduleAt(5, [&order, i] { order.push_back(i); });
  }
  q.RunUntilIdle();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, NestedScheduling) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.ScheduleAt(10, [&] {
    fired.push_back(q.now());
    q.ScheduleAfter(5, [&] { fired.push_back(q.now()); });
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 15}));
}

TEST(EventQueueTest, PastSchedulingClampsToNow) {
  EventQueue q;
  SimTime fired = -1;
  q.ScheduleAt(100, [&] {
    q.ScheduleAt(50, [&] { fired = q.now(); });  // In the past.
  });
  q.RunUntilIdle();
  EXPECT_EQ(fired, 100);
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int count = 0;
  q.ScheduleAt(10, [&] { ++count; });
  q.ScheduleAt(20, [&] { ++count; });
  q.ScheduleAt(30, [&] { ++count; });
  EXPECT_EQ(q.RunUntil(20), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(q.now(), 20);
  EXPECT_EQ(q.pending(), 1u);
}

class NetFixture : public ::testing::Test {
 protected:
  NetFixture() : network_(&events_, Rng(42)) {
    network_.SetLatency(FromMillis(0.5), 0);
  }
  EventQueue events_;
  SimNetwork network_;
};

TEST_F(NetFixture, DeliversMessageWithLatencyAndBandwidth) {
  NodeId a = network_.AddNode({1e6, 1e6});  // 1 MB/s both ways.
  NodeId b = network_.AddNode({1e6, 1e6});
  SimTime delivered_at = -1;
  Bytes received;
  network_.SetHandler(b, [&](const Message& m) {
    delivered_at = events_.now();
    received = m.payload;
  });

  Message msg;
  msg.from = a;
  msg.to = b;
  msg.kind = 7;
  msg.payload = ToBytes("hello");
  msg.wire_size = 100000;  // 0.1 s uplink + 0.1 s downlink at 1 MB/s.
  network_.Send(msg);
  events_.RunUntilIdle();

  ASSERT_NE(delivered_at, -1);
  EXPECT_EQ(received, ToBytes("hello"));
  // 100 ms tx + 0.5 ms latency + 100 ms rx = 200.5 ms.
  EXPECT_EQ(delivered_at, FromMillis(200.5));
}

TEST_F(NetFixture, UplinkSerializesConsecutiveSends) {
  NodeId a = network_.AddNode({1e6, 1e9});
  NodeId b = network_.AddNode({1e9, 1e9});
  std::vector<SimTime> deliveries;
  network_.SetHandler(b, [&](const Message&) {
    deliveries.push_back(events_.now());
  });

  for (int i = 0; i < 3; ++i) {
    Message m;
    m.from = a;
    m.to = b;
    m.wire_size = 1000000;  // 1 s each on a 1 MB/s uplink.
    network_.Send(m);
  }
  events_.RunUntilIdle();

  ASSERT_EQ(deliveries.size(), 3u);
  // Sends queue behind each other on the shared uplink.
  EXPECT_GE(deliveries[1] - deliveries[0], FromSeconds(0.99));
  EXPECT_GE(deliveries[2] - deliveries[1], FromSeconds(0.99));
}

TEST_F(NetFixture, CrashedReceiverDropsTraffic) {
  NodeId a = network_.AddNode({1e6, 1e6});
  NodeId b = network_.AddNode({1e6, 1e6});
  int received = 0;
  network_.SetHandler(b, [&](const Message&) { ++received; });
  network_.SetCrashed(b, true);

  Message m;
  m.from = a;
  m.to = b;
  m.payload = ToBytes("x");
  network_.Send(m);
  events_.RunUntilIdle();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network_.messages_dropped(), 1u);

  network_.SetCrashed(b, false);
  network_.Send(Message{a, b, 0, ToBytes("y"), 0});
  events_.RunUntilIdle();
  EXPECT_EQ(received, 1);
}

TEST_F(NetFixture, DropFilterCensorsSelectedKinds) {
  NodeId a = network_.AddNode({1e6, 1e6});
  NodeId b = network_.AddNode({1e6, 1e6});
  int received = 0;
  network_.SetHandler(b, [&](const Message&) { ++received; });
  network_.SetDropFilter([](const Message& m) { return m.kind == 13; });

  network_.Send(Message{a, b, 13, ToBytes("censored"), 0});
  network_.Send(Message{a, b, 14, ToBytes("allowed"), 0});
  events_.RunUntilIdle();
  EXPECT_EQ(received, 1);
}

TEST_F(NetFixture, TrafficAccountingByKind) {
  NodeId a = network_.AddNode({1e6, 1e6});
  NodeId b = network_.AddNode({1e6, 1e6});
  network_.SetHandler(b, [](const Message&) {});

  network_.Send(Message{a, b, 1, {}, 500});
  network_.Send(Message{a, b, 2, {}, 300});
  network_.Send(Message{a, b, 1, {}, 200});
  events_.RunUntilIdle();

  EXPECT_EQ(network_.StatsFor(a).bytes_sent, 1000u);
  EXPECT_EQ(network_.StatsFor(a).sent_by_kind.at(1), 700u);
  EXPECT_EQ(network_.StatsFor(a).sent_by_kind.at(2), 300u);
  EXPECT_EQ(network_.StatsFor(b).bytes_received, 1000u);
}

}  // namespace
}  // namespace porygon::net
