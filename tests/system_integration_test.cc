// End-to-end integration tests: a full Porygon deployment over the
// discrete-event network — witness, ordering (BA*), sharded execution,
// cross-shard coordination, and commit.

#include <gtest/gtest.h>

#include "core/system.h"

namespace porygon::core {
namespace {

SystemOptions SmallOptions() {
  SystemOptions opt;
  opt.params.shard_bits = 1;          // 2 shards.
  // With cohort rotation, each round's fresh EC holds ~(N - OC)/3 nodes
  // split over shards; thresholds must fit that cohort size.
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.blocks_per_shard_round = 2;
  opt.seed = 7;
  return opt;
}

tx::Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount,
                         uint64_t nonce) {
  tx::Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  return t;
}

TEST(SystemIntegrationTest, CommitsIntraShardTransactions) {
  PorygonSystem sys(SmallOptions());
  sys.CreateAccounts(40, 10'000);

  // Intra-shard transfers: same parity = same shard under 1 bit.
  int submitted = 0;
  for (uint64_t from = 1; from <= 20; ++from) {
    uint64_t to = from + 20;  // Same parity -> same shard.
    ASSERT_TRUE(sys.SubmitTransaction(Transfer(from, to, 5, 0)).ok());
    ++submitted;
  }

  sys.Run(10);
  const SystemMetrics m = sys.metrics();
  EXPECT_EQ(m.committed_blocks(), 10u);
  EXPECT_EQ(m.committed_intra_txs(), static_cast<uint64_t>(submitted));
  EXPECT_EQ(m.replay_mismatches(), 0u);
  EXPECT_EQ(m.failed_txs(), 0u);

  // The canonical state reflects the transfers.
  for (uint64_t from = 1; from <= 20; ++from) {
    EXPECT_EQ(sys.canonical_state().GetOrDefault(from).balance, 9'995u);
    EXPECT_EQ(sys.canonical_state().GetOrDefault(from + 20).balance,
              10'005u);
  }
}

TEST(SystemIntegrationTest, CommitsCrossShardTransactions) {
  PorygonSystem sys(SmallOptions());
  sys.CreateAccounts(40, 10'000);

  // Cross-shard transfers: different parity.
  int submitted = 0;
  for (uint64_t from = 1; from <= 10; ++from) {
    uint64_t to = from + 21;  // Different parity -> other shard.
    ASSERT_TRUE(sys.SubmitTransaction(Transfer(from, to, 7, 0)).ok());
    ++submitted;
  }

  sys.Run(12);
  const SystemMetrics m = sys.metrics();
  EXPECT_EQ(m.committed_cross_txs(), static_cast<uint64_t>(submitted));
  EXPECT_EQ(m.replay_mismatches(), 0u);

  for (uint64_t from = 1; from <= 10; ++from) {
    EXPECT_EQ(sys.canonical_state().GetOrDefault(from).balance, 9'993u);
    EXPECT_EQ(sys.canonical_state().GetOrDefault(from + 21).balance,
              10'007u);
  }
}

TEST(SystemIntegrationTest, MixedWorkloadConservesTotalBalance) {
  PorygonSystem sys(SmallOptions());
  sys.CreateAccounts(60, 1'000);
  Rng rng(99);
  std::map<uint64_t, uint64_t> nonces;
  int submitted = 0;
  for (int i = 0; i < 120; ++i) {
    uint64_t from = 1 + rng.NextBelow(60);
    uint64_t to = 1 + rng.NextBelow(60);
    if (from == to) continue;
    if (sys.SubmitTransaction(Transfer(from, to, 1, nonces[from])).ok()) {
      ++nonces[from];
      ++submitted;
    }
  }
  sys.Run(14);

  const SystemMetrics m = sys.metrics();
  EXPECT_GT(m.committed_intra_txs() + m.committed_cross_txs(), 0u);
  EXPECT_EQ(m.replay_mismatches(), 0u);

  uint64_t total = 0;
  for (uint64_t id = 1; id <= 60; ++id) {
    total += sys.canonical_state().GetOrDefault(id).balance;
  }
  EXPECT_EQ(total, 60u * 1'000u);  // Transfers conserve balance.
}

TEST(SystemIntegrationTest, LatenciesFollowThePipelineSchedule) {
  SystemOptions opt = SmallOptions();
  PorygonSystem sys(opt);
  sys.CreateAccounts(40, 10'000);
  for (uint64_t from = 1; from <= 10; ++from) {
    sys.SubmitTransaction(Transfer(from, from + 20, 1, 0));
  }
  sys.Run(10);
  const SystemMetrics m = sys.metrics();
  ASSERT_GT(m.BlockLatency().count, 0u);
  ASSERT_GT(m.CommitLatency().count, 0u);
  double block = m.BlockLatency().mean;
  double commit = m.CommitLatency().mean;
  // Intra-shard txs commit 3 rounds after witnessing (§IV-D2): the
  // commit latency is roughly 3-4 block intervals.
  EXPECT_GT(commit, 2.0 * block);
  EXPECT_LT(commit, 5.5 * block);
  // User-perceived latency includes mempool wait, so it is larger still.
  EXPECT_GE(m.UserLatency().mean, commit);
}

TEST(SystemIntegrationTest, RunsWithFourShards) {
  SystemOptions opt = SmallOptions();
  opt.params.shard_bits = 2;  // 4 shards.
  opt.num_stateless_nodes = 32;
  opt.params.witness_threshold = 2;
  PorygonSystem sys(opt);
  sys.CreateAccounts(80, 10'000);
  Rng rng(5);
  std::map<uint64_t, uint64_t> nonces;
  for (int i = 0; i < 100; ++i) {
    uint64_t from = 1 + rng.NextBelow(80);
    uint64_t to = 1 + rng.NextBelow(80);
    if (from == to) continue;
    if (sys.SubmitTransaction(Transfer(from, to, 1, nonces[from])).ok()) {
      ++nonces[from];
    }
  }
  sys.Run(14);
  EXPECT_GT(sys.metrics().committed_intra_txs() +
                sys.metrics().committed_cross_txs(),
            0u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

TEST(SystemIntegrationTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    PorygonSystem sys(SmallOptions());
    sys.CreateAccounts(40, 10'000);
    for (uint64_t from = 1; from <= 12; ++from) {
      sys.SubmitTransaction(Transfer(from, from + 20, 3, 0));
    }
    sys.Run(8);
    return std::make_tuple(sys.metrics().committed_intra_txs(),
                           sys.metrics().committed_cross_txs(),
                           sys.canonical_state().GlobalRoot(),
                           sys.sim_seconds());
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(SystemIntegrationTest, FaithfulExecutionMatchesFastPath) {
  // The faithful mode (real proofs, per-member PartialState execution)
  // must commit the same state as the fast path.
  auto run_with = [](bool faithful) {
    SystemOptions opt = SmallOptions();
    opt.faithful_execution = faithful;
    PorygonSystem sys(opt);
    sys.CreateAccounts(40, 10'000);
    for (uint64_t from = 1; from <= 10; ++from) {
      sys.SubmitTransaction(Transfer(from, from + 20, 5, 0));  // Intra.
      sys.SubmitTransaction(Transfer(from + 20, from + 1, 2, 0));  // Cross.
    }
    sys.Run(12);
    return std::make_pair(sys.metrics().committed_intra_txs() +
                              sys.metrics().committed_cross_txs(),
                          sys.canonical_state().GlobalRoot());
  };
  auto fast = run_with(false);
  auto faithful = run_with(true);
  EXPECT_EQ(fast.first, faithful.first);
  EXPECT_EQ(fast.second, faithful.second);
}

TEST(SystemIntegrationTest, MaliciousStorageCannotStallHonestBlocks) {
  // One of three storage nodes withholds bodies; its blocks are never
  // witnessed, but blocks from honest storage nodes commit (Theorem 2).
  SystemOptions opt = SmallOptions();
  opt.num_storage_nodes = 3;
  opt.malicious_storage_fraction = 0.34;  // 1 of 3.
  PorygonSystem sys(opt);
  sys.CreateAccounts(40, 10'000);
  for (uint64_t from = 1; from <= 20; ++from) {
    sys.SubmitTransaction(Transfer(from, from + 20, 1, 0));
  }
  sys.Run(12);
  // Roughly 1/3 of transactions landed in the malicious node's mempool and
  // never became available; the rest commit.
  EXPECT_GT(sys.metrics().committed_intra_txs(), 8u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

TEST(SystemIntegrationTest, ToleratesSilentStatelessMinority) {
  SystemOptions opt = SmallOptions();
  opt.num_stateless_nodes = 24;
  opt.malicious_stateless_fraction = 0.2;
  PorygonSystem sys(opt);
  sys.CreateAccounts(40, 10'000);
  for (uint64_t from = 1; from <= 16; ++from) {
    sys.SubmitTransaction(Transfer(from, from + 20, 1, 0));
  }
  sys.Run(12);
  EXPECT_GT(sys.metrics().committed_intra_txs(), 0u);
}

TEST(SystemIntegrationTest, StatelessFootprintStaysFlat) {
  PorygonSystem sys(SmallOptions());
  sys.CreateAccounts(40, 10'000);
  Rng rng(3);
  std::map<uint64_t, uint64_t> nonces;
  for (int i = 0; i < 200; ++i) {
    uint64_t from = 1 + rng.NextBelow(40);
    uint64_t to = 1 + rng.NextBelow(40);
    if (from == to) continue;
    if (sys.SubmitTransaction(Transfer(from, to, 1, nonces[from])).ok()) {
      ++nonces[from];
    }
  }
  sys.Run(12);
  // Every stateless node's modeled footprint stays small (<< the chain).
  for (int i = 0; i < sys.num_stateless_nodes(); ++i) {
    EXPECT_LT(sys.stateless_node(i)->StorageFootprintBytes(), 6u << 20);
  }
}

TEST(SystemIntegrationTest, SubmitTransactionReportsRejections) {
  PorygonSystem sys(SmallOptions());
  sys.CreateAccounts(40, 10'000);

  EXPECT_TRUE(sys.SubmitTransaction(Transfer(1, 21, 5, 0)).ok());

  // Resubmitting the identical transaction is a duplicate.
  Status dup = sys.SubmitTransaction(Transfer(1, 21, 5, 0));
  EXPECT_TRUE(dup.IsAlreadyExists());

  // Malformed transactions never reach the mempool.
  EXPECT_TRUE(sys.SubmitTransaction(Transfer(0, 21, 5, 0)).IsInvalidArgument());
  EXPECT_TRUE(sys.SubmitTransaction(Transfer(1, 0, 5, 0)).IsInvalidArgument());
  EXPECT_TRUE(sys.SubmitTransaction(Transfer(7, 7, 5, 0)).IsInvalidArgument());

  // Rejections are visible in the registry.
  const obs::MetricsRegistry* reg = sys.metrics_registry();
  EXPECT_EQ(reg->CounterValue("porygon.rejected_txs",
                              {{"reason", "duplicate"}}),
            1u);
  EXPECT_EQ(reg->CounterValue("porygon.rejected_txs", {{"reason", "invalid"}}),
            3u);
  EXPECT_EQ(reg->CounterValue("porygon.submitted_txs", {}), 1u);
}

TEST(SystemIntegrationTest, OptionsValidateCatchesBadConfigs) {
  EXPECT_TRUE(SmallOptions().Validate().ok());

  SystemOptions opt = SmallOptions();
  opt.num_stateless_nodes = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  opt = SmallOptions();
  opt.oc_size = opt.num_stateless_nodes + 1;  // OC cannot exceed population.
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  opt = SmallOptions();
  opt.malicious_stateless_fraction = 1.5;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  opt = SmallOptions();
  opt.params.block_tx_limit = 0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());

  opt = SmallOptions();
  opt.mean_session_s = -1.0;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(SystemIntegrationTest, MetricsExportIsDeterministic) {
  auto export_once = [] {
    PorygonSystem sys(SmallOptions());
    sys.CreateAccounts(40, 10'000);
    for (uint64_t from = 1; from <= 12; ++from) {
      (void)sys.SubmitTransaction(Transfer(from, from + 20, 3, 0));
      (void)sys.SubmitTransaction(Transfer(from + 20, from + 1, 2, 0));
    }
    sys.Run(10);
    return std::make_pair(sys.metrics().ToJson(), sys.metrics().ToCsv());
  };
  auto a = export_once();
  auto b = export_once();
  EXPECT_EQ(a.first, b.first);    // Byte-identical JSON.
  EXPECT_EQ(a.second, b.second);  // Byte-identical CSV.

  // The export covers all instrumented layers.
  EXPECT_NE(a.first.find("net.sent_bytes"), std::string::npos);
  EXPECT_NE(a.first.find("porygon.phase_seconds"), std::string::npos);
  EXPECT_NE(a.first.find("db.wal_bytes"), std::string::npos);
  EXPECT_NE(a.first.find("consensus.decisions"), std::string::npos);
  EXPECT_NE(a.first.find("\"p99\""), std::string::npos);
}

}  // namespace
}  // namespace porygon::core
