// Distributed-tracing tests: Tracer unit semantics (sampling, buffer
// bounds, span lifecycle, disabled cost), deterministic Chrome-JSON export,
// and the end-to-end lifecycle span tree of a cross-shard transaction
// through a full Porygon deployment.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/system.h"
#include "obs/trace.h"

namespace porygon {
namespace {

using obs::Span;
using obs::TraceContext;
using obs::Tracer;

// ---------------------------------------------------------------------------
// Tracer unit tests
// ---------------------------------------------------------------------------

TEST(TracerTest, DisabledByDefaultAndRecordsNothing) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  EXPECT_FALSE(tracer.NewTransactionTrace().active());
  EXPECT_FALSE(tracer.RoundContext(3).active());
  EXPECT_EQ(tracer.BeginSpan(TraceContext{1, 0}, "x", "n"), 0u);
  EXPECT_EQ(tracer.RecordSpan(TraceContext{1, 0}, "x", "n", 0, 5), 0u);
  EXPECT_EQ(tracer.span_count(), 0u);
}

TEST(TracerTest, ConfigureWithoutClockStaysDisabled) {
  Tracer tracer;
  Tracer::Options options;
  options.enabled = true;
  tracer.Configure(options, nullptr);
  EXPECT_FALSE(tracer.enabled());
}

Tracer::Options EnabledOptions() {
  Tracer::Options options;
  options.enabled = true;
  return options;
}

TEST(TracerTest, SamplingBudgetLimitsTransactionTraces) {
  Tracer tracer;
  Tracer::Options options = EnabledOptions();
  options.sample_transactions = 2;
  tracer.Configure(options, [] { return net::SimTime{0}; });

  TraceContext first = tracer.NewTransactionTrace();
  TraceContext second = tracer.NewTransactionTrace();
  TraceContext third = tracer.NewTransactionTrace();
  EXPECT_TRUE(first.active());
  EXPECT_TRUE(second.active());
  EXPECT_FALSE(third.active());
  EXPECT_EQ(first.trace_id, 1u);
  EXPECT_EQ(second.trace_id, 2u);
  EXPECT_EQ(tracer.sampled_transactions(), 2u);
}

TEST(TracerTest, SpanLifecycleStampsSimTime) {
  Tracer tracer;
  net::SimTime now = 100;
  tracer.Configure(EnabledOptions(), [&now] { return now; });

  TraceContext ctx = tracer.NewTransactionTrace();
  uint64_t root = tracer.BeginSpan(ctx, "tx", "client");
  ASSERT_NE(root, 0u);
  EXPECT_EQ(tracer.span_count(), 0u);  // Still open.

  now = 250;
  uint64_t child = tracer.RecordSpan(Tracer::ChildOf(ctx, root), "submit",
                                     "storage0", 100, 250);
  ASSERT_NE(child, 0u);

  now = 400;
  tracer.EndSpan(root);
  ASSERT_EQ(tracer.span_count(), 2u);

  const Span& submit = tracer.spans()[0];
  EXPECT_EQ(submit.name, "submit");
  EXPECT_EQ(submit.parent_span, root);
  EXPECT_EQ(submit.start, 100);
  EXPECT_EQ(submit.end, 250);
  const Span& tx = tracer.spans()[1];
  EXPECT_EQ(tx.name, "tx");
  EXPECT_EQ(tx.start, 100);
  EXPECT_EQ(tx.end, 400);

  // Unknown / zero span ids are inert.
  tracer.EndSpan(0);
  tracer.EndSpan(12345);
  EXPECT_EQ(tracer.span_count(), 2u);
}

TEST(TracerTest, BufferBoundDropsAndCounts) {
  Tracer tracer;
  Tracer::Options options = EnabledOptions();
  options.max_spans = 3;
  tracer.Configure(options, [] { return net::SimTime{7}; });

  TraceContext lane = tracer.RoundContext(1);
  EXPECT_NE(tracer.Instant(lane, "a", "n"), 0u);
  EXPECT_NE(tracer.Instant(lane, "b", "n"), 0u);
  EXPECT_NE(tracer.Instant(lane, "c", "n"), 0u);
  EXPECT_EQ(tracer.Instant(lane, "d", "n"), 0u);
  EXPECT_EQ(tracer.BeginSpan(lane, "e", "n"), 0u);
  EXPECT_EQ(tracer.span_count(), 3u);
  EXPECT_EQ(tracer.dropped_spans(), 2u);
}

TEST(TracerTest, RoundLaneIdsAreDisjointFromTransactionIds) {
  Tracer tracer;
  tracer.Configure(EnabledOptions(), [] { return net::SimTime{0}; });
  EXPECT_EQ(tracer.RoundContext(5).trace_id, Tracer::kRoundTraceBase + 5);
  EXPECT_LT(tracer.NewTransactionTrace().trace_id, Tracer::kRoundTraceBase);
}

TEST(TracerTest, ExportIsByteIdenticalForIdenticalSpanSets) {
  auto record = [](Tracer* tracer) {
    net::SimTime now = 10;
    tracer->Configure(EnabledOptions(), [&now] { return now; });
    TraceContext ctx = tracer->NewTransactionTrace();
    uint64_t root = tracer->BeginSpan(ctx, "tx", "client");
    tracer->RecordSpan(Tracer::ChildOf(ctx, root), "submit", "storage1", 10,
                       20);
    now = 30;
    tracer->Instant(tracer->RoundContext(2), "vote", "node3");
    tracer->EndSpan(root);
    return tracer->ExportChromeJson();
  };
  Tracer a;
  Tracer b;
  std::string ja = record(&a);
  std::string jb = record(&b);
  EXPECT_EQ(ja, jb);
  EXPECT_EQ(ja, a.ExportChromeJson());  // Export itself is idempotent.

  // Spot-check the shape: metadata + one complete event + one instant.
  EXPECT_NE(ja.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(ja.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(ja.find("\"name\":\"round 2\""), std::string::npos);
  EXPECT_NE(ja.find("\"name\":\"tx 1\""), std::string::npos);
}

TEST(TracerTest, ExportOmitsOpenSpans) {
  Tracer tracer;
  tracer.Configure(EnabledOptions(), [] { return net::SimTime{0}; });
  tracer.BeginSpan(tracer.RoundContext(1), "never_closed", "n");
  std::string json = tracer.ExportChromeJson();
  EXPECT_EQ(json.find("never_closed"), std::string::npos);
}

// ---------------------------------------------------------------------------
// End-to-end lifecycle tracing through a full deployment
// ---------------------------------------------------------------------------

core::SystemOptions TracedOptions() {
  core::SystemOptions opt;
  opt.params.shard_bits = 1;  // 2 shards.
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.blocks_per_shard_round = 2;
  opt.seed = 7;
  opt.trace.enabled = true;
  return opt;
}

tx::Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount) {
  tx::Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = 0;
  return t;
}

std::string RunTracedScenario(core::PorygonSystem* sys) {
  sys->CreateAccounts(100, 10'000);
  EXPECT_TRUE(sys->SubmitTransaction(Transfer(2, 4, 250)).ok());  // Intra.
  EXPECT_TRUE(sys->SubmitTransaction(Transfer(6, 5, 100)).ok());  // Cross.
  sys->Run(12);
  return sys->tracer()->ExportChromeJson();
}

TEST(SystemTracingTest, SameSeedProducesByteIdenticalTraceJson) {
  core::PorygonSystem first(TracedOptions());
  core::PorygonSystem second(TracedOptions());
  std::string ja = RunTracedScenario(&first);
  std::string jb = RunTracedScenario(&second);
  EXPECT_GT(first.tracer()->span_count(), 0u);
  EXPECT_EQ(ja, jb);
}

TEST(SystemTracingTest, CrossShardLifecycleSpansFormANestedChain) {
  core::PorygonSystem sys(TracedOptions());
  RunTracedScenario(&sys);
  ASSERT_GE(sys.metrics().committed_cross_txs(), 1u);
  ASSERT_GE(sys.metrics().committed_intra_txs(), 1u);

  const Tracer& tracer = *sys.tracer();
  // The cross-shard transfer was the second submission -> trace id 2.
  const uint64_t trace_id = 2;
  const Span* root = nullptr;
  std::vector<const Span*> children;
  for (const Span& s : tracer.spans()) {
    if (s.trace_id != trace_id) continue;
    if (s.name == "tx") {
      root = &s;
    } else {
      children.push_back(&s);
    }
  }
  ASSERT_NE(root, nullptr);

  // The full cross-shard lifecycle, in pipeline order.
  const std::vector<std::string> expected = {"submit",   "witness", "ordering",
                                             "sse",      "msu",     "commit"};
  ASSERT_EQ(children.size(), expected.size());
  std::sort(children.begin(), children.end(),
            [](const Span* a, const Span* b) { return a->start < b->start; });
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(children[i]->name, expected[i]) << "stage " << i;
    // Properly nested: every stage is a child of the root span and lies
    // within its interval.
    EXPECT_EQ(children[i]->parent_span, root->span_id);
    EXPECT_GE(children[i]->start, root->start);
    EXPECT_LE(children[i]->end, root->end);
    // Stages do not overlap; consecutive stages abut exactly (each starts
    // where the previous ended).
    if (i > 0) {
      EXPECT_EQ(children[i]->start, children[i - 1]->end);
    }
    EXPECT_LE(children[i]->start, children[i]->end);
  }
  EXPECT_EQ(children.front()->start, root->start);
  EXPECT_EQ(children.back()->end, root->end);

  // The intra-shard transfer (trace id 1) ends with a commit and no msu.
  bool saw_intra_commit = false;
  for (const Span& s : tracer.spans()) {
    if (s.trace_id != 1) continue;
    EXPECT_NE(s.name, "msu");
    if (s.name == "commit") saw_intra_commit = true;
  }
  EXPECT_TRUE(saw_intra_commit);
}

TEST(SystemTracingTest, RoundLanesRecordPipelinePhases) {
  core::PorygonSystem sys(TracedOptions());
  RunTracedScenario(&sys);

  // Pipeline phases land on per-round lanes: packaging-side phases on the
  // batch round's lane, consensus/execution-side phases on the listing
  // round's lane. Every phase must show up on some lane, and the consensus
  // phases of one round must share a single lane.
  std::map<uint64_t, std::set<std::string>> lanes;
  for (const Span& s : sys.tracer()->spans()) {
    if (s.trace_id >= Tracer::kRoundTraceBase) {
      lanes[s.trace_id - Tracer::kRoundTraceBase].insert(s.name);
    }
  }
  for (const char* phase : {"round", "witness", "ordering", "ba_star", "vote",
                            "execution", "exec", "commit", "apply_block"}) {
    bool seen = false;
    for (const auto& [round, names] : lanes) seen |= names.count(phase) > 0;
    EXPECT_TRUE(seen) << "phase " << phase << " missing from all round lanes";
  }
  bool consensus_lane = false;
  for (const auto& [round, names] : lanes) {
    consensus_lane |= names.count("round") && names.count("ordering") &&
                      names.count("ba_star") && names.count("vote") &&
                      names.count("commit");
  }
  EXPECT_TRUE(consensus_lane);
  // The listing round that executed the submitted transactions carries the
  // execution-side phases together.
  bool exec_lane = false;
  for (const auto& [round, names] : lanes) {
    exec_lane |= names.count("execution") && names.count("exec") &&
                 names.count("sse") && names.count("msu");
  }
  EXPECT_TRUE(exec_lane);
}

TEST(SystemTracingTest, DisabledTracingRecordsNothing) {
  core::SystemOptions opt = TracedOptions();
  opt.trace.enabled = false;
  core::PorygonSystem sys(opt);
  RunTracedScenario(&sys);
  EXPECT_FALSE(sys.tracer()->enabled());
  EXPECT_EQ(sys.tracer()->span_count(), 0u);
  EXPECT_EQ(sys.tracer()->sampled_transactions(), 0u);
  // The protocol outcome is identical to an untraced build.
  EXPECT_GE(sys.metrics().committed_cross_txs(), 1u);
}

TEST(SystemTracingTest, SpanBufferBoundHoldsUnderLoad) {
  core::SystemOptions opt = TracedOptions();
  opt.trace.max_spans = 64;
  core::PorygonSystem sys(opt);
  RunTracedScenario(&sys);
  EXPECT_LE(sys.tracer()->span_count(), 64u);
  EXPECT_GT(sys.tracer()->dropped_spans(), 0u);
}

}  // namespace
}  // namespace porygon
