// BA★ consensus tests over an in-memory vote bus: agreement, quorum
// thresholds, equivocation handling, timeouts, and certificates.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "consensus/ba_star.h"
#include "crypto/provider.h"

namespace porygon::consensus {
namespace {

using crypto::FastProvider;
using crypto::Hash256;
using crypto::KeyPair;

Hash256 Value(uint8_t tag) {
  Hash256 h{};
  h[0] = tag;
  return h;
}

/// In-memory committee: N BaStar instances wired through a synchronous bus
/// with optional per-node delivery control.
class Committee {
 public:
  Committee(int n, FastProvider* provider) : provider_(provider) {
    Rng rng(99);
    std::vector<crypto::PublicKey> members;
    for (int i = 0; i < n; ++i) {
      keys_.push_back(provider->GenerateKeyPair(&rng));
      members.push_back(keys_.back().public_key);
    }
    decisions_.resize(n);
    for (int i = 0; i < n; ++i) {
      nodes_.push_back(std::make_unique<BaStar>(
          provider, keys_[i], members,
          [this](const Vote& v) { pending_.push_back(v); },
          [this, i](const DecisionCert& cert) { decisions_[i] = cert; }));
    }
  }

  /// Delivers all queued votes to all nodes (repeatedly, until quiescent).
  void DeliverAll() {
    while (!pending_.empty()) {
      std::vector<Vote> batch = std::move(pending_);
      pending_.clear();
      for (const Vote& v : batch) {
        for (auto& node : nodes_) node->OnVote(v);
      }
    }
  }

  std::vector<KeyPair> keys_;
  std::vector<std::unique_ptr<BaStar>> nodes_;
  std::vector<std::optional<DecisionCert>> decisions_;
  std::vector<Vote> pending_;
  FastProvider* provider_;
};

TEST(BaStarTest, UnanimousProposalDecides) {
  FastProvider provider;
  Committee c(7, &provider);
  for (auto& node : c.nodes_) node->Propose(1, Value(42));
  c.DeliverAll();
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(c.nodes_[i]->decided()) << i;
    EXPECT_EQ(c.nodes_[i]->decision(), Value(42));
    ASSERT_TRUE(c.decisions_[i].has_value());
    EXPECT_GE(c.decisions_[i]->votes.size(), c.nodes_[i]->QuorumSize());
  }
}

TEST(BaStarTest, QuorumIsTwoThirdsPlusOne) {
  FastProvider provider;
  Committee c(9, &provider);
  EXPECT_EQ(c.nodes_[0]->QuorumSize(), 7u);  // floor(18/3)+1.
  Committee c4(4, &provider);
  EXPECT_EQ(c4.nodes_[0]->QuorumSize(), 3u);
}

TEST(BaStarTest, MinorityDissentCannotBlockDecision) {
  FastProvider provider;
  Committee c(10, &provider);
  // 8 propose A, 2 propose B: A reaches the soft quorum.
  for (int i = 0; i < 8; ++i) c.nodes_[i]->Propose(1, Value(1));
  for (int i = 8; i < 10; ++i) c.nodes_[i]->Propose(1, Value(2));
  c.DeliverAll();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(c.nodes_[i]->decided()) << i;
    EXPECT_EQ(c.nodes_[i]->decision(), Value(1));
  }
}

TEST(BaStarTest, SplitVoteRecoversViaTimeout) {
  FastProvider provider;
  Committee c(9, &provider);
  // 5 vs 4: neither reaches 7.
  for (int i = 0; i < 5; ++i) c.nodes_[i]->Propose(1, Value(1));
  for (int i = 5; i < 9; ++i) c.nodes_[i]->Propose(1, Value(2));
  c.DeliverAll();
  for (auto& node : c.nodes_) EXPECT_FALSE(node->decided());

  // Timeout: everyone re-votes the strongest value (1, with 5 supporters).
  for (auto& node : c.nodes_) node->OnTimeout();
  c.DeliverAll();
  for (auto& node : c.nodes_) {
    ASSERT_TRUE(node->decided());
    EXPECT_EQ(node->decision(), Value(1));
  }
}

TEST(BaStarTest, NonMemberVotesIgnored) {
  FastProvider provider;
  Committee c(4, &provider);
  Rng rng(7);
  KeyPair outsider = provider.GenerateKeyPair(&rng);

  // Outsider floods cert votes for a bogus value.
  for (int i = 0; i < 10; ++i) {
    Vote v;
    v.instance = 1;
    v.step = 0;
    v.kind = Vote::kCert;
    v.value = Value(66);
    v.voter = outsider.public_key;
    v.signature = provider.Sign(outsider.private_key, v.SigningBytes());
    for (auto& node : c.nodes_) node->OnVote(v);
  }
  for (auto& node : c.nodes_) node->Propose(1, Value(5));
  c.DeliverAll();
  for (auto& node : c.nodes_) EXPECT_EQ(node->decision(), Value(5));
}

TEST(BaStarTest, ForgedSignatureIgnored) {
  FastProvider provider;
  Committee c(4, &provider);
  for (auto& node : c.nodes_) node->Propose(1, Value(5));

  Vote forged;
  forged.instance = 1;
  forged.step = 0;
  forged.kind = Vote::kSoft;
  forged.value = Value(77);
  forged.voter = c.keys_[0].public_key;  // Member, but wrong signature.
  forged.signature.fill(0xAB);
  for (auto& node : c.nodes_) node->OnVote(forged);

  c.DeliverAll();
  for (auto& node : c.nodes_) EXPECT_EQ(node->decision(), Value(5));
}

TEST(BaStarTest, EquivocationCountsOnlyFirstVote) {
  FastProvider provider;
  Committee c(4, &provider);  // Quorum 3.
  // Node 3 equivocates: signs both values. Nodes 0-2 propose A.
  for (int i = 0; i < 3; ++i) c.nodes_[i]->Propose(1, Value(1));

  auto make_vote = [&](uint8_t tag) {
    Vote v;
    v.instance = 1;
    v.step = 0;
    v.kind = Vote::kSoft;
    v.value = Value(tag);
    v.voter = c.keys_[3].public_key;
    v.signature = provider.Sign(c.keys_[3].private_key, v.SigningBytes());
    return v;
  };
  Vote v_a = make_vote(1);
  Vote v_b = make_vote(2);
  for (auto& node : c.nodes_) {
    node->OnVote(v_a);
    node->OnVote(v_b);  // Second vote from the same voter: inert.
  }
  c.DeliverAll();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(c.nodes_[i]->decided());
    EXPECT_EQ(c.nodes_[i]->decision(), Value(1));
  }
}

TEST(BaStarTest, VoteEncodingRoundTrip) {
  FastProvider provider;
  Rng rng(3);
  KeyPair kp = provider.GenerateKeyPair(&rng);
  Vote v;
  v.instance = 77;
  v.step = 3;
  v.kind = Vote::kCert;
  v.value = Value(9);
  v.voter = kp.public_key;
  v.signature = provider.Sign(kp.private_key, v.SigningBytes());

  auto decoded = Vote::Decode(v.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->instance, 77u);
  EXPECT_EQ(decoded->step, 3u);
  EXPECT_EQ(decoded->kind, Vote::kCert);
  EXPECT_EQ(decoded->value, Value(9));
  EXPECT_EQ(decoded->voter, kp.public_key);
  EXPECT_EQ(decoded->signature, v.signature);
}

TEST(BaStarTest, CrashFaultMinorityStillDecides) {
  FastProvider provider;
  Committee c(10, &provider);
  // 3 members never vote (crashed); 7 >= quorum(7) carry the decision.
  for (int i = 0; i < 7; ++i) c.nodes_[i]->Propose(1, Value(4));
  c.DeliverAll();
  for (int i = 0; i < 7; ++i) {
    ASSERT_TRUE(c.nodes_[i]->decided());
    EXPECT_EQ(c.nodes_[i]->decision(), Value(4));
  }
}

}  // namespace
}  // namespace porygon::consensus
