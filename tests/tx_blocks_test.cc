// Transaction / block / pool / pipeline-schedule tests.

#include <gtest/gtest.h>

#include "core/pipeline.h"
#include "tx/blocks.h"
#include "tx/transaction.h"
#include "tx/txpool.h"

namespace porygon::tx {
namespace {

Transaction Make(uint64_t from, uint64_t to, uint64_t amount,
                 uint64_t nonce) {
  Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  t.submitted_at = 123456;
  return t;
}

TEST(TransactionTest, EncodeDecodeRoundTrip) {
  Transaction t = Make(10, 20, 500, 3);
  t.signature.fill(0xCD);
  auto decoded = Transaction::Decode(t.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, t);
}

TEST(TransactionTest, IdCoversBodyNotSignature) {
  Transaction a = Make(1, 2, 3, 4);
  Transaction b = a;
  b.signature.fill(0xFF);
  EXPECT_EQ(a.Id(), b.Id());  // Signature excluded.
  b.amount = 99;
  EXPECT_NE(a.Id(), b.Id());  // Body included.
}

TEST(TransactionTest, CrossShardDetection) {
  EXPECT_FALSE(Make(2, 4, 1, 0).IsCrossShard(1));  // Even/even.
  EXPECT_TRUE(Make(2, 3, 1, 0).IsCrossShard(1));
  EXPECT_FALSE(Make(2, 3, 1, 0).IsCrossShard(0));  // One shard: never.
}

TEST(BlockTest, SealAndVerifyHeader) {
  TransactionBlock block;
  block.header.shard = 1;
  block.header.round_created = 7;
  for (int i = 0; i < 5; ++i) {
    block.transactions.push_back(Make(i, i + 1, 10, 0));
  }
  block.SealHeader();
  EXPECT_EQ(block.header.tx_count, 5u);
  EXPECT_TRUE(block.BodyMatchesHeader());

  // Tampering with the body breaks the seal.
  block.transactions[2].amount = 999;
  EXPECT_FALSE(block.BodyMatchesHeader());
}

TEST(BlockTest, EncodeDecodeRoundTrip) {
  TransactionBlock block;
  block.header.creator_storage_node = 3;
  block.header.round_created = 9;
  block.header.shard = 2;
  block.transactions = {Make(1, 2, 3, 0), Make(4, 5, 6, 1)};
  block.SealHeader();

  auto decoded = TransactionBlock::Decode(block.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->header.Id(), block.header.Id());
  EXPECT_EQ(decoded->transactions.size(), 2u);
  EXPECT_TRUE(decoded->BodyMatchesHeader());
}

TEST(ProposalBlockTest, EncodeDecodeRoundTrip) {
  ProposalBlock b;
  b.height = 12;
  b.round = 12;
  b.prev_hash = crypto::Sha256::Hash(ToBytes("prev"));
  b.shard_tx_blocks = {{crypto::Sha256::Hash(ToBytes("b1"))}, {}};
  b.shard_updates = {{}, {{42, {100, 1}}}};
  b.discarded = {crypto::Sha256::Hash(ToBytes("bad"))};
  b.shard_roots = {crypto::Sha256::Hash(ToBytes("r0")),
                   crypto::Sha256::Hash(ToBytes("r1"))};
  b.state_root = crypto::Sha256::Hash(ToBytes("root"));
  b.ordering_threshold = 0.1;
  b.execution_threshold = 0.7;

  auto decoded = ProposalBlock::Decode(b.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->Hash(), b.Hash());
  EXPECT_EQ(decoded->shard_updates[1][0].account, 42u);
  EXPECT_EQ(decoded->discarded.size(), 1u);
  EXPECT_EQ(decoded->ordering_threshold, 0.1);
}

TEST(ProposalBlockTest, HashChangesWithContent) {
  ProposalBlock a;
  a.height = 1;
  ProposalBlock b = a;
  b.height = 2;
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(TxPoolTest, DeduplicatesAndBucketsByShard) {
  TxPool pool(1);
  Transaction t = Make(2, 4, 10, 0);  // Shard 0 (even sender).
  EXPECT_TRUE(pool.Add(t));
  EXPECT_FALSE(pool.Add(t));  // Duplicate id.
  EXPECT_TRUE(pool.Add(Make(3, 4, 10, 0)));  // Shard 1.
  EXPECT_EQ(pool.PendingInShard(0), 1u);
  EXPECT_EQ(pool.PendingInShard(1), 1u);
  EXPECT_EQ(pool.PendingTotal(), 2u);
}

TEST(TxPoolTest, PackBlockDrainsFifoUpToLimit) {
  TxPool pool(0);
  for (int i = 0; i < 10; ++i) pool.Add(Make(1, 2, 100 + i, i));
  TransactionBlock block = pool.PackBlock(0, 4, /*creator=*/7, /*round=*/3);
  EXPECT_EQ(block.transactions.size(), 4u);
  EXPECT_EQ(block.transactions[0].amount, 100u);  // FIFO order.
  EXPECT_EQ(block.header.creator_storage_node, 7u);
  EXPECT_TRUE(block.BodyMatchesHeader());
  EXPECT_EQ(pool.PendingTotal(), 6u);
}

}  // namespace
}  // namespace porygon::tx

namespace porygon::core {
namespace {

TEST(PipelineScheduleTest, MatchesPaperFigure4) {
  PipelineSchedule schedule(3);
  // EC formed at round 5: witness 5, cross-batch 6, execute at 7.
  EXPECT_EQ(schedule.ExecutionRound(5), 7u);
  EXPECT_TRUE(schedule.IsAlive(5, 5));
  EXPECT_TRUE(schedule.IsAlive(5, 7));
  EXPECT_FALSE(schedule.IsAlive(5, 8));
  EXPECT_FALSE(schedule.IsAlive(5, 4));
  EXPECT_EQ(schedule.ConcurrentCommittees(), 3);
  EXPECT_EQ(schedule.WitnessBatches(5), (std::vector<uint64_t>{5, 6}));
}

TEST(PipelineScheduleTest, CommitRounds) {
  PipelineSchedule schedule;
  // §IV-D2: intra-shard witnessed in round i commits at i+3; cross at i+5.
  EXPECT_EQ(schedule.IntraShardCommitRound(10), 13u);
  EXPECT_EQ(schedule.CrossShardCommitRound(10), 15u);
}

TEST(PipelineScheduleTest, PhaseNames) {
  EXPECT_STREQ(PhaseName(Phase::kWitness), "Witness");
  EXPECT_STREQ(PhaseName(Phase::kOrdering), "Ordering");
  EXPECT_STREQ(PhaseName(Phase::kExecution), "Execution");
  EXPECT_STREQ(PhaseName(Phase::kCommit), "Commit");
}

}  // namespace
}  // namespace porygon::core
