// End-to-end tests for the LSM Db: WAL recovery, flush, compaction, scans,
// bloom filters, and SSTable format round trips.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>

#include "common/rng.h"
#include "storage/bloom.h"
#include "storage/db.h"
#include "storage/env.h"
#include "storage/sstable.h"
#include "storage/wal.h"

namespace porygon::storage {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilterBuilder builder(10);
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) keys.push_back("key" + std::to_string(i));
  for (const auto& k : keys) builder.Add(ToBytes(k));
  Bytes data = builder.Finish();
  BloomFilterReader reader(data);
  for (const auto& k : keys) {
    EXPECT_TRUE(reader.MayContain(ToBytes(k))) << k;
  }
}

TEST(BloomFilterTest, LowFalsePositiveRate) {
  BloomFilterBuilder builder(10);
  for (int i = 0; i < 1000; ++i) builder.Add(ToBytes("in" + std::to_string(i)));
  Bytes data = builder.Finish();
  BloomFilterReader reader(data);
  int false_positives = 0;
  for (int i = 0; i < 10000; ++i) {
    if (reader.MayContain(ToBytes("out" + std::to_string(i)))) {
      ++false_positives;
    }
  }
  // 10 bits/key targets ~1%; allow generous slack.
  EXPECT_LT(false_positives, 400);
}

TEST(SstableTest, BuildAndReadBack) {
  MemEnv env;
  SstableBuilder builder(&env, "t.sst");
  ASSERT_TRUE(builder.Add(ToBytes("a"), 1, ValueType::kValue, ToBytes("va"))
                  .ok());
  ASSERT_TRUE(builder.Add(ToBytes("b"), 2, ValueType::kDeletion, ByteView())
                  .ok());
  ASSERT_TRUE(builder.Add(ToBytes("c"), 3, ValueType::kValue, ToBytes("vc"))
                  .ok());
  ASSERT_TRUE(builder.Finish().ok());

  auto reader = SstableReader::Open(&env, "t.sst");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->entry_count(), 3u);

  bool tombstone = false;
  auto va = (*reader)->Get(ToBytes("a"), &tombstone);
  ASSERT_TRUE(va.ok());
  EXPECT_EQ(*va, ToBytes("va"));

  auto vb = (*reader)->Get(ToBytes("b"), &tombstone);
  EXPECT_FALSE(vb.ok());
  EXPECT_TRUE(tombstone);

  tombstone = false;
  auto vd = (*reader)->Get(ToBytes("d"), &tombstone);
  EXPECT_FALSE(vd.ok());
  EXPECT_FALSE(tombstone);
}

TEST(SstableTest, RejectsOutOfOrderKeys) {
  MemEnv env;
  SstableBuilder builder(&env, "t.sst");
  ASSERT_TRUE(builder.Add(ToBytes("b"), 1, ValueType::kValue, ToBytes("1"))
                  .ok());
  EXPECT_FALSE(builder.Add(ToBytes("a"), 2, ValueType::kValue, ToBytes("2"))
                   .ok());
  EXPECT_FALSE(builder.Add(ToBytes("b"), 3, ValueType::kValue, ToBytes("3"))
                   .ok());
}

TEST(SstableTest, ManyKeysSpanningIndexGroups) {
  MemEnv env;
  SstableBuilder builder(&env, "big.sst");
  const int n = 1000;  // Dozens of sparse-index groups.
  char keybuf[16];
  for (int i = 0; i < n; ++i) {
    std::snprintf(keybuf, sizeof(keybuf), "key%06d", i);
    ASSERT_TRUE(builder
                    .Add(ToBytes(keybuf), i + 1, ValueType::kValue,
                         ToBytes("value" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(builder.Finish().ok());

  auto reader = SstableReader::Open(&env, "big.sst");
  ASSERT_TRUE(reader.ok());
  bool tombstone;
  for (int i = 0; i < n; i += 37) {
    std::snprintf(keybuf, sizeof(keybuf), "key%06d", i);
    auto v = (*reader)->Get(ToBytes(keybuf), &tombstone);
    ASSERT_TRUE(v.ok()) << keybuf;
    EXPECT_EQ(*v, ToBytes("value" + std::to_string(i)));
  }
  // ForEach yields all entries in order.
  int count = 0;
  Bytes prev;
  ASSERT_TRUE((*reader)
                  ->ForEach([&](const SstableReader::Entry& e) {
                    if (count > 0) {
                      EXPECT_TRUE(ByteView(prev) < ByteView(e.key));
                    }
                    prev = e.key;
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, n);
}

TEST(SstableTest, CorruptFooterDetected) {
  MemEnv env;
  SstableBuilder builder(&env, "t.sst");
  ASSERT_TRUE(builder.Add(ToBytes("k"), 1, ValueType::kValue, ToBytes("v"))
                  .ok());
  ASSERT_TRUE(builder.Finish().ok());

  // Flip a byte inside the footer's offsets region.
  auto data = env.ReadFile("t.sst");
  ASSERT_TRUE(data.ok());
  Bytes corrupted = *data;
  corrupted[corrupted.size() - 20] ^= 0xFF;
  auto f = env.NewWritableFile("t.sst");
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->Append(corrupted).ok());

  auto reader = SstableReader::Open(&env, "t.sst");
  EXPECT_FALSE(reader.ok());
}

TEST(WalTest, WriteReplayRoundTrip) {
  MemEnv env;
  {
    auto w = WalWriter::Open(&env, "wal");
    ASSERT_TRUE(w.ok());
    ASSERT_TRUE((*w)->AddRecord(1, ValueType::kValue, ToBytes("a"),
                                ToBytes("1")).ok());
    ASSERT_TRUE((*w)->AddRecord(2, ValueType::kDeletion, ToBytes("a"),
                                ByteView()).ok());
    ASSERT_TRUE((*w)->AddRecord(3, ValueType::kValue, ToBytes("b"),
                                ToBytes("2")).ok());
  }
  std::vector<WalRecord> records;
  auto max_seq = WalReplay(&env, "wal",
                           [&](const WalRecord& r) { records.push_back(r); });
  ASSERT_TRUE(max_seq.ok());
  EXPECT_EQ(*max_seq, 3u);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0].key, ToBytes("a"));
  EXPECT_EQ(records[1].type, ValueType::kDeletion);
  EXPECT_EQ(records[2].value, ToBytes("2"));
}

TEST(WalTest, TornTailStopsReplayCleanly) {
  MemEnv env;
  {
    auto w = WalWriter::Open(&env, "wal");
    ASSERT_TRUE((*w)->AddRecord(1, ValueType::kValue, ToBytes("good"),
                                ToBytes("1")).ok());
    ASSERT_TRUE((*w)->AddRecord(2, ValueType::kValue, ToBytes("torn"),
                                ToBytes("2")).ok());
  }
  auto data = env.ReadFile("wal");
  Bytes truncated(*data);
  truncated.resize(truncated.size() - 3);  // Tear the last record.
  auto f = env.NewWritableFile("wal");
  ASSERT_TRUE((*f)->Append(truncated).ok());

  std::vector<WalRecord> records;
  auto max_seq = WalReplay(&env, "wal",
                           [&](const WalRecord& r) { records.push_back(r); });
  ASSERT_TRUE(max_seq.ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].key, ToBytes("good"));
}

TEST(DbTest, PutGetDelete) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Put(ToBytes("k1"), ToBytes("v1")).ok());
  ASSERT_TRUE((*db)->Put(ToBytes("k2"), ToBytes("v2")).ok());

  auto v = (*db)->Get(ToBytes("k1"));
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, ToBytes("v1"));

  ASSERT_TRUE((*db)->Delete(ToBytes("k1")).ok());
  EXPECT_FALSE((*db)->Get(ToBytes("k1")).ok());
  EXPECT_TRUE((*db)->Get(ToBytes("k2")).ok());
}

TEST(DbTest, GetSpansMemtableAndTables) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE((*db)->Put(ToBytes("flushed"), ToBytes("on-disk")).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put(ToBytes("fresh"), ToBytes("in-mem")).ok());

  EXPECT_EQ(*(*db)->Get(ToBytes("flushed")), ToBytes("on-disk"));
  EXPECT_EQ(*(*db)->Get(ToBytes("fresh")), ToBytes("in-mem"));
}

TEST(DbTest, TombstoneMasksFlushedValue) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE((*db)->Put(ToBytes("k"), ToBytes("v")).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Delete(ToBytes("k")).ok());
  EXPECT_FALSE((*db)->Get(ToBytes("k")).ok());
  // Still deleted after the tombstone itself is flushed.
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_FALSE((*db)->Get(ToBytes("k")).ok());
  // And after full compaction drops the tombstone.
  ASSERT_TRUE((*db)->CompactAll().ok());
  EXPECT_FALSE((*db)->Get(ToBytes("k")).ok());
}

TEST(DbTest, CompactionPreservesNewestVersions) {
  MemEnv env;
  DbOptions options;
  options.l0_compaction_trigger = 2;
  auto db = Db::Open(&env, "db", options);
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      std::string key = "key" + std::to_string(i);
      std::string value = "round" + std::to_string(round);
      ASSERT_TRUE((*db)->Put(ToBytes(key), ToBytes(value)).ok());
    }
    ASSERT_TRUE((*db)->Flush().ok());
  }
  for (int i = 0; i < 20; ++i) {
    auto v = (*db)->Get(ToBytes("key" + std::to_string(i)));
    ASSERT_TRUE(v.ok());
    EXPECT_EQ(*v, ToBytes("round4"));
  }
}

TEST(DbTest, RecoveryFromWal) {
  MemEnv env;
  {
    auto db = Db::Open(&env, "db");
    ASSERT_TRUE((*db)->Put(ToBytes("persist"), ToBytes("me")).ok());
    ASSERT_TRUE((*db)->Put(ToBytes("and"), ToBytes("me-too")).ok());
    // No flush: data lives only in WAL + memtable. Drop the Db.
  }
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  auto v = (*db)->Get(ToBytes("persist"));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(*v, ToBytes("me"));
  EXPECT_EQ(*(*db)->Get(ToBytes("and")), ToBytes("me-too"));
}

TEST(DbTest, RecoveryAfterFlushAndReopen) {
  MemEnv env;
  {
    auto db = Db::Open(&env, "db");
    ASSERT_TRUE((*db)->Put(ToBytes("a"), ToBytes("1")).ok());
    ASSERT_TRUE((*db)->Flush().ok());
    ASSERT_TRUE((*db)->Put(ToBytes("b"), ToBytes("2")).ok());
  }
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(*(*db)->Get(ToBytes("a")), ToBytes("1"));
  EXPECT_EQ(*(*db)->Get(ToBytes("b")), ToBytes("2"));
}

TEST(DbTest, ScanRangeAndOrdering) {
  MemEnv env;
  auto db = Db::Open(&env, "db");
  ASSERT_TRUE((*db)->Put(ToBytes("d"), ToBytes("4")).ok());
  ASSERT_TRUE((*db)->Put(ToBytes("a"), ToBytes("1")).ok());
  ASSERT_TRUE((*db)->Flush().ok());
  ASSERT_TRUE((*db)->Put(ToBytes("c"), ToBytes("3")).ok());
  ASSERT_TRUE((*db)->Put(ToBytes("b"), ToBytes("2")).ok());
  ASSERT_TRUE((*db)->Delete(ToBytes("c")).ok());

  std::vector<std::string> keys;
  ASSERT_TRUE((*db)
                  ->Scan(ToBytes("a"), ToBytes("d"),
                         [&](ByteView k, ByteView) {
                           keys.push_back(k.ToString());
                         })
                  .ok());
  ASSERT_EQ(keys.size(), 2u);  // c deleted, d excluded (end-exclusive).
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
}

class DbRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DbRandomTest, MatchesReferenceMapUnderChurn) {
  // Property: under random puts/deletes/flushes/compactions/reopens, the Db
  // always matches an in-memory reference map.
  Rng rng(GetParam());
  MemEnv env;
  DbOptions options;
  options.write_buffer_size = 4 << 10;  // Force frequent flushes.
  options.l0_compaction_trigger = 3;
  auto db_result = Db::Open(&env, "db", options);
  ASSERT_TRUE(db_result.ok());
  std::unique_ptr<Db> db = std::move(db_result).value();
  std::map<std::string, std::string> reference;

  for (int op = 0; op < 3000; ++op) {
    double dice = rng.NextDouble();
    std::string key = "k" + std::to_string(rng.NextBelow(150));
    if (dice < 0.6) {
      std::string value = "v" + std::to_string(rng.NextU64() % 1000000);
      ASSERT_TRUE(db->Put(ToBytes(key), ToBytes(value)).ok());
      reference[key] = value;
    } else if (dice < 0.85) {
      ASSERT_TRUE(db->Delete(ToBytes(key)).ok());
      reference.erase(key);
    } else if (dice < 0.95) {
      auto v = db->Get(ToBytes(key));
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_FALSE(v.ok()) << key;
      } else {
        ASSERT_TRUE(v.ok()) << key;
        EXPECT_EQ(*v, ToBytes(it->second));
      }
    } else if (dice < 0.98) {
      ASSERT_TRUE(db->Flush().ok());
    } else {
      // Reopen (crash-recovery path).
      db.reset();
      auto reopened = Db::Open(&env, "db", options);
      ASSERT_TRUE(reopened.ok());
      db = std::move(reopened).value();
    }
  }

  // Final full comparison via Scan.
  std::map<std::string, std::string> scanned;
  ASSERT_TRUE(db->Scan(ByteView(), ByteView(),
                       [&](ByteView k, ByteView v) {
                         scanned[k.ToString()] = v.ToString();
                       })
                  .ok());
  EXPECT_EQ(scanned, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbRandomTest,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace porygon::storage
