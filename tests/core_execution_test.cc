// Shard executor tests: transfer semantics, determinism, failure recording,
// cross-shard pre-execution, and update application.

#include <gtest/gtest.h>

#include "core/execution.h"

namespace porygon::core {
namespace {

using state::Account;
using state::ShardedState;
using tx::StateUpdate;
using tx::Transaction;

Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount,
                     uint64_t nonce) {
  Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  return t;
}

class ExecutionTest : public ::testing::Test {
 protected:
  ExecutionTest() : state_(1) {  // 2 shards: even ids -> 0, odd -> 1.
    state_.PutAccount(2, {1000, 0});   // Shard 0.
    state_.PutAccount(4, {500, 0});    // Shard 0.
    state_.PutAccount(3, {800, 0});    // Shard 1.
  }
  ShardedState state_;
};

TEST_F(ExecutionTest, IntraShardTransferApplies) {
  ExecutionInput in;
  in.shard = 0;
  in.intra_shard = {Transfer(2, 4, 100, 0)};
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.intra_applied, 1u);
  EXPECT_TRUE(result.failed.empty());
  EXPECT_EQ(state_.GetOrDefault(2).balance, 900u);
  EXPECT_EQ(state_.GetOrDefault(2).nonce, 1u);
  EXPECT_EQ(state_.GetOrDefault(4).balance, 600u);
  EXPECT_EQ(result.shard_root, state_.ShardRoot(0));
}

TEST_F(ExecutionTest, TransferToFreshAccountCreatesIt) {
  ExecutionInput in;
  in.shard = 0;
  in.intra_shard = {Transfer(2, 100, 50, 0)};  // 100 is even: shard 0, new.
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.intra_applied, 1u);
  EXPECT_EQ(state_.GetOrDefault(100).balance, 50u);
}

TEST_F(ExecutionTest, InsufficientBalanceFails) {
  ExecutionInput in;
  in.shard = 0;
  in.intra_shard = {Transfer(4, 2, 10000, 0)};
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.intra_applied, 0u);
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0].reason, TxFailure::kInsufficientBalance);
  EXPECT_EQ(state_.GetOrDefault(4).balance, 500u);  // Unchanged.
}

TEST_F(ExecutionTest, ReplayRejectedByNonce) {
  ExecutionInput in;
  in.shard = 0;
  in.intra_shard = {Transfer(2, 4, 100, 0), Transfer(2, 4, 100, 0)};
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.intra_applied, 1u);  // Second is a duplicate.
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0].reason, TxFailure::kBadNonce);
  EXPECT_EQ(state_.GetOrDefault(2).balance, 900u);  // Debited once.
}

TEST_F(ExecutionTest, SequentialNoncesChainWithinOneBlock) {
  ExecutionInput in;
  in.shard = 0;
  in.intra_shard = {Transfer(2, 4, 100, 0), Transfer(2, 4, 100, 1)};
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.intra_applied, 2u);
  EXPECT_EQ(state_.GetOrDefault(2).balance, 800u);
  EXPECT_EQ(state_.GetOrDefault(2).nonce, 2u);
}

TEST_F(ExecutionTest, WrongShardSenderRejected) {
  ExecutionInput in;
  in.shard = 0;
  in.intra_shard = {Transfer(3, 2, 10, 0)};  // 3 lives in shard 1.
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.intra_applied, 0u);
  ASSERT_EQ(result.failed.size(), 1u);
  EXPECT_EQ(result.failed[0].reason, TxFailure::kWrongShard);
}

TEST_F(ExecutionTest, CrossShardPreExecutionDoesNotMutateState) {
  auto root_before = state_.ShardRoot(0);
  ExecutionInput in;
  in.shard = 0;
  in.cross_shard = {Transfer(2, 3, 200, 0)};  // 2 (shard 0) -> 3 (shard 1).
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.cross_pre_executed, 1u);
  // No subtree mutation.
  EXPECT_EQ(state_.ShardRoot(0), root_before);
  EXPECT_EQ(state_.GetOrDefault(2).balance, 1000u);
  // S contains final values for both accounts.
  ASSERT_EQ(result.cross_updates.size(), 2u);
  EXPECT_EQ(result.cross_updates[0].account, 2u);
  EXPECT_EQ(result.cross_updates[0].value.balance, 800u);
  EXPECT_EQ(result.cross_updates[0].value.nonce, 1u);
  EXPECT_EQ(result.cross_updates[1].account, 3u);
  EXPECT_EQ(result.cross_updates[1].value.balance, 1000u);
}

TEST_F(ExecutionTest, SameRoundCrossShardTransactionsCompose) {
  ExecutionInput in;
  in.shard = 0;
  in.cross_shard = {Transfer(2, 3, 100, 0), Transfer(2, 3, 100, 1)};
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(result.cross_pre_executed, 2u);
  ASSERT_EQ(result.cross_updates.size(), 2u);
  EXPECT_EQ(result.cross_updates[0].value.balance, 800u);  // Sender 2.
  EXPECT_EQ(result.cross_updates[0].value.nonce, 2u);
  EXPECT_EQ(result.cross_updates[1].value.balance, 1000u);  // Receiver 3.
}

TEST_F(ExecutionTest, UpdateListAppliesDirectly) {
  ExecutionInput in;
  in.shard = 1;
  in.updates = {{3, {123, 9}}};
  auto result = ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(state_.GetOrDefault(3).balance, 123u);
  EXPECT_EQ(state_.GetOrDefault(3).nonce, 9u);
  EXPECT_EQ(result.shard_root, state_.ShardRoot(1));
}

TEST_F(ExecutionTest, UpdatesForForeignShardIgnored) {
  ExecutionInput in;
  in.shard = 1;
  in.updates = {{2, {1, 1}}};  // Account 2 belongs to shard 0.
  ShardExecutor::Execute(&state_, in);
  EXPECT_EQ(state_.GetOrDefault(2).balance, 1000u);  // Untouched.
}

TEST_F(ExecutionTest, ExecutionIsDeterministicAcrossReplicas) {
  // Two replicas with identical state and inputs produce identical roots
  // and S sets (Lemma 3's premise).
  ShardedState replica(1);
  replica.PutAccount(2, {1000, 0});
  replica.PutAccount(4, {500, 0});
  replica.PutAccount(3, {800, 0});

  ExecutionInput in;
  in.shard = 0;
  in.intra_shard = {Transfer(2, 4, 10, 0), Transfer(4, 2, 5, 0)};
  in.cross_shard = {Transfer(2, 3, 20, 1)};

  auto r1 = ShardExecutor::Execute(&state_, in);
  auto r2 = ShardExecutor::Execute(&replica, in);
  EXPECT_EQ(r1.shard_root, r2.shard_root);
  EXPECT_EQ(r1.cross_updates.size(), r2.cross_updates.size());
  for (size_t i = 0; i < r1.cross_updates.size(); ++i) {
    EXPECT_EQ(r1.cross_updates[i], r2.cross_updates[i]);
  }
}

}  // namespace
}  // namespace porygon::core
