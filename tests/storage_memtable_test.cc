// MemTable (arena-backed skiplist) unit and property tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>

#include "common/rng.h"
#include "storage/arena.h"
#include "storage/memtable.h"

namespace porygon::storage {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAndAligned) {
  Arena arena;
  char* a = arena.Allocate(13);
  char* b = arena.Allocate(7);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_GT(arena.MemoryUsage(), 0u);
}

TEST(ArenaTest, LargeAllocationGetsOwnBlock) {
  Arena arena;
  char* small = arena.Allocate(8);
  char* large = arena.Allocate(1 << 20);
  char* small2 = arena.Allocate(8);
  EXPECT_NE(large, nullptr);
  // The current small block survives a large allocation.
  EXPECT_EQ(small + 8, small2);
}

TEST(MemTableTest, BasicPutGet) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, ToBytes("key"), ToBytes("value"));
  bool tombstone = false;
  auto r = mt.Get(ToBytes("key"), &tombstone);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("value"));
  EXPECT_FALSE(tombstone);
}

TEST(MemTableTest, MissingKey) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, ToBytes("a"), ToBytes("1"));
  bool tombstone = false;
  auto r = mt.Get(ToBytes("b"), &tombstone);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(tombstone);
}

TEST(MemTableTest, NewestVersionWins) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, ToBytes("k"), ToBytes("old"));
  mt.Add(2, ValueType::kValue, ToBytes("k"), ToBytes("new"));
  bool tombstone = false;
  auto r = mt.Get(ToBytes("k"), &tombstone);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("new"));
}

TEST(MemTableTest, TombstoneMasksOlderValue) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, ToBytes("k"), ToBytes("v"));
  mt.Add(2, ValueType::kDeletion, ToBytes("k"), ByteView());
  bool tombstone = false;
  auto r = mt.Get(ToBytes("k"), &tombstone);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(tombstone);
}

TEST(MemTableTest, ValueAfterTombstoneResurrects) {
  MemTable mt;
  mt.Add(1, ValueType::kDeletion, ToBytes("k"), ByteView());
  mt.Add(2, ValueType::kValue, ToBytes("k"), ToBytes("back"));
  bool tombstone = false;
  auto r = mt.Get(ToBytes("k"), &tombstone);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, ToBytes("back"));
}

TEST(MemTableTest, IterationIsSortedNewestFirstPerKey) {
  MemTable mt;
  mt.Add(3, ValueType::kValue, ToBytes("b"), ToBytes("b3"));
  mt.Add(1, ValueType::kValue, ToBytes("a"), ToBytes("a1"));
  mt.Add(4, ValueType::kValue, ToBytes("a"), ToBytes("a4"));
  mt.Add(2, ValueType::kValue, ToBytes("c"), ToBytes("c2"));

  std::vector<std::pair<std::string, uint64_t>> seen;
  auto it = mt.NewIterator();
  it.SeekToFirst();
  while (it.Valid()) {
    seen.emplace_back(it.key().ToString(), it.sequence());
    it.Next();
  }
  ASSERT_EQ(seen.size(), 4u);
  EXPECT_EQ(seen[0], (std::pair<std::string, uint64_t>{"a", 4}));
  EXPECT_EQ(seen[1], (std::pair<std::string, uint64_t>{"a", 1}));
  EXPECT_EQ(seen[2], (std::pair<std::string, uint64_t>{"b", 3}));
  EXPECT_EQ(seen[3], (std::pair<std::string, uint64_t>{"c", 2}));
}

TEST(MemTableTest, SeekPositionsAtOrAfter) {
  MemTable mt;
  mt.Add(1, ValueType::kValue, ToBytes("apple"), ToBytes("1"));
  mt.Add(2, ValueType::kValue, ToBytes("cherry"), ToBytes("2"));
  auto it = mt.NewIterator();
  it.Seek(ToBytes("banana"));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key().ToString(), "cherry");
  it.Seek(ToBytes("zebra"));
  EXPECT_FALSE(it.Valid());
}

class MemTableRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MemTableRandomTest, MatchesReferenceMap) {
  // Property: a memtable behaves exactly like a map applied in sequence
  // order, for arbitrary interleavings of puts and deletes.
  Rng rng(GetParam());
  MemTable mt;
  std::map<std::string, std::pair<bool, std::string>> reference;  // live?, val

  uint64_t seq = 0;
  for (int op = 0; op < 2000; ++op) {
    std::string key = "key" + std::to_string(rng.NextBelow(200));
    if (rng.NextBernoulli(0.25)) {
      mt.Add(++seq, ValueType::kDeletion, ToBytes(key), ByteView());
      reference[key] = {false, ""};
    } else {
      std::string value = "v" + std::to_string(rng.NextU64() % 100000);
      mt.Add(++seq, ValueType::kValue, ToBytes(key), ToBytes(value));
      reference[key] = {true, value};
    }
  }

  for (const auto& [key, expected] : reference) {
    bool tombstone = false;
    auto r = mt.Get(ToBytes(key), &tombstone);
    if (expected.first) {
      ASSERT_TRUE(r.ok()) << key;
      EXPECT_EQ(r->data() != nullptr ? std::string(r->begin(), r->end())
                                     : std::string(),
                expected.second);
    } else {
      EXPECT_FALSE(r.ok()) << key;
      EXPECT_TRUE(tombstone) << key;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemTableRandomTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace porygon::storage
