// Ed25519 tests: RFC 8032 test vectors, field-arithmetic properties, and
// adversarial rejection cases (tampering, malleability, bad points).

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/sc25519.h"

namespace porygon::crypto {
namespace {

PrivateKey SeedFromHex(const std::string& hex) {
  auto r = HexDecode(hex);
  PrivateKey k;
  std::copy(r->begin(), r->end(), k.begin());
  return k;
}

// --- RFC 8032 section 7.1 test vectors -------------------------------------

TEST(Ed25519Rfc8032Test, Test1EmptyMessage) {
  auto seed = SeedFromHex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  KeyPair kp = Ed25519KeyPairFromSeed(seed);
  EXPECT_EQ(HexEncode(ByteView(kp.public_key.data(), 32)),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  Signature sig = Ed25519Sign(seed, ByteView(std::string_view("")));
  EXPECT_EQ(HexEncode(ByteView(sig.data(), 64)),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(
      Ed25519Verify(kp.public_key, ByteView(std::string_view("")), sig));
}

TEST(Ed25519Rfc8032Test, Test2OneByteMessage) {
  auto seed = SeedFromHex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  KeyPair kp = Ed25519KeyPairFromSeed(seed);
  EXPECT_EQ(HexEncode(ByteView(kp.public_key.data(), 32)),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  uint8_t msg[1] = {0x72};
  Signature sig = Ed25519Sign(seed, ByteView(msg, 1));
  EXPECT_EQ(HexEncode(ByteView(sig.data(), 64)),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(Ed25519Verify(kp.public_key, ByteView(msg, 1), sig));
}

// --- Round-trip and rejection properties ------------------------------------

TEST(Ed25519Test, SignVerifyRoundTripManyKeys) {
  Rng rng(0xE0E0E0);
  for (int i = 0; i < 8; ++i) {
    KeyPair kp = Ed25519GenerateKeyPair(&rng);
    Bytes msg = rng.NextBytes(1 + i * 13);
    Signature sig = Ed25519Sign(kp.private_key, msg);
    EXPECT_TRUE(Ed25519Verify(kp.public_key, msg, sig));
  }
}

TEST(Ed25519Test, TamperedMessageRejected) {
  Rng rng(7);
  KeyPair kp = Ed25519GenerateKeyPair(&rng);
  Bytes msg = ToBytes("transfer 100 from A to B");
  Signature sig = Ed25519Sign(kp.private_key, msg);
  Bytes tampered = msg;
  tampered[9] ^= 0x01;  // "100" -> different amount.
  EXPECT_FALSE(Ed25519Verify(kp.public_key, tampered, sig));
}

TEST(Ed25519Test, TamperedSignatureRejected) {
  Rng rng(8);
  KeyPair kp = Ed25519GenerateKeyPair(&rng);
  Bytes msg = ToBytes("hello");
  Signature sig = Ed25519Sign(kp.private_key, msg);
  for (size_t byte : {size_t{0}, size_t{31}, size_t{32}, size_t{63}}) {
    Signature bad = sig;
    bad[byte] ^= 0x40;
    EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, bad)) << "byte " << byte;
  }
}

TEST(Ed25519Test, WrongKeyRejected) {
  Rng rng(9);
  KeyPair kp1 = Ed25519GenerateKeyPair(&rng);
  KeyPair kp2 = Ed25519GenerateKeyPair(&rng);
  Bytes msg = ToBytes("message");
  Signature sig = Ed25519Sign(kp1.private_key, msg);
  EXPECT_FALSE(Ed25519Verify(kp2.public_key, msg, sig));
}

TEST(Ed25519Test, NonCanonicalScalarRejected) {
  // S >= l must be rejected (malleability guard). Craft S = l.
  Rng rng(10);
  KeyPair kp = Ed25519GenerateKeyPair(&rng);
  Bytes msg = ToBytes("msg");
  Signature sig = Ed25519Sign(kp.private_key, msg);
  const uint8_t l_le[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                            0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
  std::copy(l_le, l_le + 32, sig.begin() + 32);
  EXPECT_FALSE(Ed25519Verify(kp.public_key, msg, sig));
}

TEST(Ed25519Test, DeterministicSignatures) {
  Rng rng(11);
  KeyPair kp = Ed25519GenerateKeyPair(&rng);
  Bytes msg = ToBytes("deterministic");
  EXPECT_EQ(Ed25519Sign(kp.private_key, msg), Ed25519Sign(kp.private_key, msg));
}

TEST(Ed25519Test, BasePointOrder) {
  EXPECT_TRUE(ed25519_internal::BasePointHasExpectedOrder());
}

// --- Field arithmetic properties --------------------------------------------

class Fe25519PropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Fe25519PropertyTest, RingAxioms) {
  Rng rng(GetParam());
  auto random_fe = [&rng]() {
    Bytes b = rng.NextBytes(32);
    return FeFromBytes(b.data());
  };
  Fe25519 a = random_fe(), b = random_fe(), c = random_fe();

  // Commutativity.
  EXPECT_TRUE(FeEqual(FeAdd(a, b), FeAdd(b, a)));
  EXPECT_TRUE(FeEqual(FeMul(a, b), FeMul(b, a)));
  // Associativity.
  EXPECT_TRUE(FeEqual(FeMul(FeMul(a, b), c), FeMul(a, FeMul(b, c))));
  EXPECT_TRUE(FeEqual(FeAdd(FeAdd(a, b), c), FeAdd(a, FeAdd(b, c))));
  // Distributivity.
  EXPECT_TRUE(
      FeEqual(FeMul(a, FeAdd(b, c)), FeAdd(FeMul(a, b), FeMul(a, c))));
  // Identities and inverses.
  EXPECT_TRUE(FeEqual(FeMul(a, FeOne()), a));
  EXPECT_TRUE(FeEqual(FeAdd(a, FeZero()), a));
  EXPECT_TRUE(FeEqual(FeSub(a, a), FeZero()));
  if (!FeIsZero(a)) {
    EXPECT_TRUE(FeEqual(FeMul(a, FeInvert(a)), FeOne()));
  }
  // Square matches mul.
  EXPECT_TRUE(FeEqual(FeSquare(a), FeMul(a, a)));
  // Encode/decode round trip.
  auto bytes = FeToBytes(a);
  EXPECT_TRUE(FeEqual(FeFromBytes(bytes.data()), a));
}

INSTANTIATE_TEST_SUITE_P(RandomSeeds, Fe25519PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(Fe25519Test, SqrtM1Squared) {
  EXPECT_TRUE(FeEqual(FeSquare(FeSqrtM1()), FeNeg(FeOne())));
}

// --- Scalar arithmetic -------------------------------------------------------

TEST(Sc25519Test, ReduceOfGroupOrderIsZero) {
  uint8_t l_le[32] = {0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58,
                      0xd6, 0x9c, 0xf7, 0xa2, 0xde, 0xf9, 0xde, 0x14,
                      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
                      0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
  Scalar r = ScReduce32(l_le);
  EXPECT_TRUE(ScIsZero(r));
  EXPECT_FALSE(ScIsCanonical(l_le));
}

TEST(Sc25519Test, MulAddSmallValues) {
  Scalar a{}, b{}, c{};
  a[0] = 3;
  b[0] = 5;
  c[0] = 7;
  Scalar r = ScMulAdd(a, b, c);
  Scalar expected{};
  expected[0] = 22;
  EXPECT_EQ(r, expected);
}

TEST(Sc25519Test, MulAddDistributes) {
  Rng rng(99);
  // (a*b + 0) + (a*c + 0) == a*(b+c) mod l, exercised via ScMulAdd identities.
  Scalar a{}, b{}, c{}, zero{};
  auto rnd = rng.NextBytes(32);
  Scalar raw;
  std::copy(rnd.begin(), rnd.end(), raw.begin());
  a = ScReduce32(raw.data());
  rnd = rng.NextBytes(32);
  std::copy(rnd.begin(), rnd.end(), raw.begin());
  b = ScReduce32(raw.data());
  rnd = rng.NextBytes(32);
  std::copy(rnd.begin(), rnd.end(), raw.begin());
  c = ScReduce32(raw.data());

  Scalar ab = ScMulAdd(a, b, zero);
  Scalar ac = ScMulAdd(a, c, zero);
  Scalar sum_then_mul = ScMulAdd(a, ScMulAdd(b, ScalarOne(), c), zero);
  Scalar mul_then_sum = ScMulAdd(ScalarOne(), ab, ac);
  EXPECT_EQ(sum_then_mul, mul_then_sum);
}

}  // namespace
}  // namespace porygon::crypto
