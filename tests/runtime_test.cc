// Deterministic parallel compute runtime: TaskPool semantics, batch crypto
// verification, and the headline invariant — a simulation produces
// byte-identical exports and the same final state root for any worker
// thread count (PORYGON_THREADS ∈ {0, 1, 4}).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "core/system.h"
#include "crypto/provider.h"
#include "net/network.h"
#include "runtime/task_pool.h"

namespace porygon {
namespace {

// --- TaskPool ---------------------------------------------------------------

TEST(TaskPoolTest, SerialFallbackRunsEveryIndexInOrder) {
  runtime::TaskPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0);
  std::vector<size_t> order;
  pool.ParallelFor(5, [&](size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<size_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pool.tasks_run(), 5u);
}

TEST(TaskPoolTest, ParallelRunsEveryIndexExactlyOnce) {
  runtime::TaskPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(pool.tasks_run(), kN);
}

TEST(TaskPoolTest, ReusableAcrossBatches) {
  runtime::TaskPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> out(17, 0);
    pool.ParallelFor(out.size(), [&](size_t i) { out[i] = i * i; });
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
  }
  EXPECT_EQ(pool.tasks_run(), 50u * 17u);
}

TEST(TaskPoolTest, EmptyBatchIsANoOp) {
  runtime::TaskPool pool(2);
  pool.ParallelFor(0, [&](size_t) { FAIL() << "body must not run"; });
  EXPECT_EQ(pool.tasks_run(), 0u);
}

TEST(TaskPoolTest, ParallelMapMergesInIndexOrder) {
  for (int threads : {0, 3}) {
    runtime::TaskPool pool(threads);
    std::vector<int> out = runtime::ParallelMap<int>(
        &pool, 64, [](size_t i) { return static_cast<int>(i) * 7; });
    ASSERT_EQ(out.size(), 64u);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_EQ(out[i], static_cast<int>(i) * 7);
    }
  }
  // A null pool means "serial on the caller" too.
  std::vector<int> out =
      runtime::ParallelMap<int>(nullptr, 3, [](size_t i) { return (int)i; });
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
}

TEST(TaskPoolTest, ResolveThreadsPrefersEnvOverRequested) {
  unsetenv("PORYGON_THREADS");
  EXPECT_EQ(runtime::TaskPool::ResolveThreads(3), 3);
  EXPECT_EQ(runtime::TaskPool::ResolveThreads(-2), 0);

  setenv("PORYGON_THREADS", "7", 1);
  EXPECT_EQ(runtime::TaskPool::ResolveThreads(3), 7);
  setenv("PORYGON_THREADS", "0", 1);
  EXPECT_EQ(runtime::TaskPool::ResolveThreads(3), 0);
  // Garbage and out-of-range values fall back to the requested count.
  setenv("PORYGON_THREADS", "lots", 1);
  EXPECT_EQ(runtime::TaskPool::ResolveThreads(3), 3);
  setenv("PORYGON_THREADS", "-1", 1);
  EXPECT_EQ(runtime::TaskPool::ResolveThreads(3), 3);
  unsetenv("PORYGON_THREADS");
}

// --- Batch crypto verification ----------------------------------------------

TEST(VerifyBatchTest, MatchesSerialVerifyIncludingFailures) {
  for (int threads : {0, 4}) {
    crypto::FastProvider provider;
    runtime::TaskPool pool(threads);
    provider.SetTaskPool(&pool);

    Rng rng(42);
    std::vector<crypto::KeyPair> keys;
    for (int i = 0; i < 8; ++i) keys.push_back(provider.GenerateKeyPair(&rng));

    std::vector<crypto::CryptoProvider::VerifyJob> jobs;
    std::vector<uint8_t> expected;
    for (int i = 0; i < 8; ++i) {
      Bytes msg = ToBytes("message " + std::to_string(i));
      crypto::Signature sig =
          provider.Sign(keys[i].private_key, ByteView(msg));
      if (i % 3 == 1) sig[0] ^= 0xff;  // Corrupt every third signature.
      jobs.push_back({keys[i].public_key, msg, sig});
      expected.push_back(i % 3 == 1 ? 0 : 1);
    }
    EXPECT_EQ(provider.VerifyBatch(jobs), expected) << threads << " threads";
    EXPECT_TRUE(provider.VerifyBatch({}).empty());
  }
}

TEST(VerifyBatchTest, ProofBatchMatchesSerialVerifyProof) {
  for (int threads : {0, 4}) {
    crypto::FastProvider provider;
    runtime::TaskPool pool(threads);
    provider.SetTaskPool(&pool);

    Rng rng(7);
    std::vector<crypto::CryptoProvider::ProofVerifyJob> jobs;
    std::vector<uint8_t> expected;
    for (int i = 0; i < 6; ++i) {
      crypto::KeyPair kp = provider.GenerateKeyPair(&rng);
      Bytes input = ToBytes("round " + std::to_string(i));
      crypto::VrfProof proof =
          provider.Prove(kp.private_key, ByteView(input));
      if (i == 2) proof.output[0] ^= 0x01;  // Tampered output.
      jobs.push_back({kp.public_key, input, proof});
      expected.push_back(i == 2 ? 0 : 1);
    }
    EXPECT_EQ(provider.VerifyProofBatch(jobs), expected)
        << threads << " threads";
  }
}

// --- TrafficStats sorted export views ---------------------------------------

TEST(TrafficStatsTest, SortedViewsAreKeyOrderedRegardlessOfInsertion) {
  net::TrafficStats stats;
  for (uint16_t kind : {900, 3, 77, 14, 500, 1}) {
    stats.sent_by_kind[kind] = kind * 10u;
    stats.received_by_kind[kind] = kind + 1u;
  }
  const auto sent = stats.SortedSentByKind();
  const auto received = stats.SortedReceivedByKind();
  const std::vector<uint16_t> want_keys{1, 3, 14, 77, 500, 900};
  ASSERT_EQ(sent.size(), want_keys.size());
  ASSERT_EQ(received.size(), want_keys.size());
  for (size_t i = 0; i < want_keys.size(); ++i) {
    EXPECT_EQ(sent[i].first, want_keys[i]);
    EXPECT_EQ(sent[i].second, want_keys[i] * 10u);
    EXPECT_EQ(received[i].first, want_keys[i]);
    EXPECT_EQ(received[i].second, want_keys[i] + 1u);
  }
}

// --- Thread-count invariance (the tentpole's acceptance test) ---------------

namespace invariance {

struct RunArtifacts {
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace_json;
  crypto::Hash256 global_root{};
  double sim_seconds = 0;
};

RunArtifacts RunScenario(int worker_threads) {
  // fig8c-style open workload: mixed intra- and cross-shard transfers over
  // a 2-shard deployment, tracing enabled.
  core::SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.blocks_per_shard_round = 2;
  opt.seed = 33;
  opt.trace.enabled = true;
  opt.trace.sample_transactions = 8;
  opt.worker_threads = worker_threads;

  core::PorygonSystem sys(opt);
  sys.CreateAccounts(60, 10'000);
  Rng rng(99);
  std::map<uint64_t, uint64_t> nonces;
  for (int i = 0; i < 80; ++i) {
    uint64_t from = 1 + rng.NextBelow(60);
    uint64_t to = 1 + rng.NextBelow(60);
    if (from == to) continue;
    tx::Transaction t;
    t.from = from;
    t.to = to;
    t.amount = 1;
    t.nonce = nonces[from];
    if (sys.SubmitTransaction(t).ok()) ++nonces[from];
  }
  sys.Run(10);

  RunArtifacts out;
  out.metrics_json = sys.metrics().ToJson();
  out.metrics_csv = sys.metrics().ToCsv();
  out.trace_json = sys.tracer()->ExportChromeJson();
  out.global_root = sys.canonical_state().GlobalRoot();
  out.sim_seconds = sys.sim_seconds();
  return out;
}

TEST(ThreadInvarianceTest, ExportsAreByteIdenticalForAnyThreadCount) {
  unsetenv("PORYGON_THREADS");  // Options drive the thread count below.
  const RunArtifacts serial = RunScenario(0);
  ASSERT_FALSE(serial.metrics_json.empty());
  ASSERT_FALSE(serial.trace_json.empty());
  // The runtime phases must show up in the (deterministic) export.
  EXPECT_NE(serial.metrics_json.find("runtime.tasks"), std::string::npos);
  // Volatile wall-clock gauges must NOT leak into exports.
  EXPECT_EQ(serial.metrics_json.find("runtime.wall_us"), std::string::npos);
  EXPECT_EQ(serial.metrics_csv.find("runtime.wall_us"), std::string::npos);

  for (int threads : {1, 4}) {
    const RunArtifacts run = RunScenario(threads);
    EXPECT_EQ(run.metrics_json, serial.metrics_json) << threads << " threads";
    EXPECT_EQ(run.metrics_csv, serial.metrics_csv) << threads << " threads";
    EXPECT_EQ(run.trace_json, serial.trace_json) << threads << " threads";
    EXPECT_EQ(run.global_root, serial.global_root) << threads << " threads";
    EXPECT_EQ(run.sim_seconds, serial.sim_seconds) << threads << " threads";
  }
}

TEST(ThreadInvarianceTest, EnvVariableOverridesConfiguredThreads) {
  unsetenv("PORYGON_THREADS");
  const RunArtifacts serial = RunScenario(0);
  setenv("PORYGON_THREADS", "4", 1);
  const RunArtifacts env_run = RunScenario(0);
  unsetenv("PORYGON_THREADS");
  EXPECT_EQ(env_run.metrics_json, serial.metrics_json);
  EXPECT_EQ(env_run.global_root, serial.global_root);
}

}  // namespace invariance

}  // namespace
}  // namespace porygon
