// Fault-injection coverage: network partitions and crashes against the
// protocol's liveness/safety claims (§V), plus witness-phase data
// availability (Challenge 2) at the message level.

#include <gtest/gtest.h>

#include <string>

#include "core/system.h"
#include "net/fault.h"
#include "net/network.h"
#include "workload/generator.h"
#include "workload/soak.h"

namespace porygon::core {
namespace {

SystemOptions Opts() {
  SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.seed = 7;
  return opt;
}

/// The safety/liveness sweep every faulty run must survive, routed through
/// the chaos-soak harness's shared InvariantChecker: bounded commit gaps,
/// intact hash links and aggregated roots along the whole chain, and clean
/// storage replay — the same checks bench/soak asserts continuously.
void ExpectCoreInvariants(PorygonSystem& sys) {
  workload::InvariantChecker checker;
  EXPECT_TRUE(checker.CheckBoundedCommitGap(sys).ok());
  EXPECT_TRUE(checker.CheckChainIntegrity(sys).ok());
  EXPECT_TRUE(checker.CheckNoReplayMismatches(sys).ok());
  for (const std::string& v : checker.violations()) ADD_FAILURE() << v;
}

TEST(FaultInjectionTest, CrashedStatelessNodesDontStallRounds) {
  PorygonSystem sys(Opts());
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  // Crash a couple of non-OC nodes mid-run (harsher than Byzantine-silent:
  // they also stop ACKing network deliveries).
  sys.Run(3);
  int crashed = 0;
  for (int i = 0; i < sys.num_stateless_nodes() && crashed < 3; ++i) {
    if (!sys.stateless_node(i)->in_oc()) {
      sys.network()->SetCrashed(sys.stateless_node(i)->net_id(), true);
      ++crashed;
    }
  }
  sys.Run(9);
  EXPECT_EQ(sys.metrics().committed_blocks(), 12u);  // Rounds keep closing.
  EXPECT_GT(sys.metrics().committed_intra_txs(), 0u);
  ExpectCoreInvariants(sys);
}

TEST(FaultInjectionTest, WitnessPhaseBlocksUnavailableBodies) {
  // Half the storage nodes withhold bodies and drop routed traffic — the
  // paper's beta = 1/2 bound, which SystemOptions::Validate now enforces
  // as a hard ceiling. Blocks packaged by the withholding node can never
  // be witnessed (their bodies are unavailable, Challenge 2), so their
  // transactions never commit; blocks from the honest node still flow,
  // and nothing *incorrect* commits.
  SystemOptions opt = Opts();
  opt.malicious_storage_fraction = 0.5;
  PorygonSystem sys(opt);
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 20; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 30;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(8, net::FromSeconds(300));
  // Liveness: the honest half keeps the chain moving.
  EXPECT_GT(sys.metrics().committed_blocks(), 0u);
  // Safety: whatever committed replays cleanly and the chain verifies.
  ExpectCoreInvariants(sys);
  // The withholding node really acted (bodies dropped at distribution).
  EXPECT_GT(sys.adversary()->actions(), 0u);
  // Transactions homed at the withholding node are stuck in unavailable
  // blocks, so not everything can commit.
  EXPECT_LT(sys.metrics().committed_txs(), 20u);
}

TEST(FaultInjectionTest, DropFilterCensorshipDegradesButDoesNotCorrupt) {
  // Randomly drop 20% of witness uploads at the network layer: some blocks
  // miss Tw and roll into later batches, but committed state stays
  // consistent (replay matches).
  PorygonSystem sys(Opts());
  sys.CreateAccounts(10'000, 100'000);
  Rng drop_rng(99);
  sys.network()->SetDropFilter([&drop_rng](const net::Message& m) {
    return m.kind == kMsgWitnessUpload && drop_rng.NextBernoulli(0.2);
  });
  workload::WorkloadGenerator gen(
      {.num_accounts = 10'000, .shard_bits = 1, .seed = 17});
  for (int r = 0; r < 12; ++r) {
    for (const auto& t : gen.Batch(150)) sys.SubmitTransaction(t);
    sys.Run(1);
  }
  EXPECT_GT(sys.metrics().committed_intra_txs() +
                sys.metrics().committed_cross_txs(),
            0u);
  ExpectCoreInvariants(sys);

  uint64_t total = 0;
  for (uint64_t id = 1; id <= 10'000; ++id) {
    total += sys.canonical_state().GetOrDefault(id).balance;
  }
  EXPECT_EQ(total, 10'000ull * 100'000ull);  // Censorship never mints/burns.
}

TEST(FaultInjectionTest, CrashedStorageMinorityIsRoutedAround) {
  // One of four storage nodes crashes outright. Stateless nodes whose
  // primary died lose their round feed, but nodes served by live storage
  // keep the system committing.
  SystemOptions opt = Opts();
  opt.num_storage_nodes = 4;
  PorygonSystem sys(opt);
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 16; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(2);
  sys.network()->SetCrashed(sys.storage_node(3)->net_id(), true);
  sys.Run(10, net::FromSeconds(300));
  EXPECT_GT(sys.metrics().committed_blocks(), 8u);
  EXPECT_GT(sys.metrics().committed_intra_txs(), 0u);
  ExpectCoreInvariants(sys);
}

TEST(FaultInjectionTest, PrimaryStorageCrashFailsOverAndStillCommits) {
  // Connections are draw-ordered (no honest-first oracle), so with full
  // connectivity every stateless node starts on storage 0. Crashing it
  // mid-run must not end the chain: deadlines, strikes, and the round
  // watchdog rotate everyone onto storage 1 and rounds keep closing.
  SystemOptions opt = Opts();
  opt.trace.enabled = true;
  PorygonSystem sys(opt);
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  for (int i = 0; i < sys.num_stateless_nodes(); ++i) {
    ASSERT_EQ(sys.stateless_node(i)->primary_storage(),
              sys.storage_node(0)->net_id());
  }
  sys.Run(3);
  const uint64_t committed_before = sys.metrics().committed_intra_txs();

  net::FaultPlan plan;
  plan.crashes.push_back(
      {sys.storage_node(0)->net_id(), sys.events()->now() + net::FromMillis(500),
       /*recover=*/false});
  ASSERT_TRUE(sys.InjectFaults(plan).ok());
  for (uint64_t f = 11; f <= 18; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(9, net::FromSeconds(600));

  EXPECT_EQ(sys.metrics().committed_blocks(), 12u);
  EXPECT_GT(sys.metrics().committed_intra_txs(), committed_before);
  ExpectCoreInvariants(sys);
  const auto* rotations =
      sys.metrics_registry()->FindCounter("core.failover.rotations", {});
  ASSERT_NE(rotations, nullptr);
  EXPECT_GT(rotations->value(), 0u);
  const auto* crash_events = sys.metrics_registry()->FindCounter(
      "net.fault.events", {{"type", "crash"}});
  ASSERT_NE(crash_events, nullptr);
  EXPECT_EQ(crash_events->value(), 1u);
  // The failover left its marks in the trace's fault lane.
  const std::string trace = sys.tracer()->ExportChromeJson();
  EXPECT_NE(trace.find("\"faults\""), std::string::npos);
  EXPECT_NE(trace.find("primary_rotation"), std::string::npos);
  // Everyone abandoned the dead primary.
  for (int i = 0; i < sys.num_stateless_nodes(); ++i) {
    EXPECT_EQ(sys.stateless_node(i)->primary_storage(),
              sys.storage_node(1)->net_id());
  }
}

TEST(FaultInjectionTest, StorageCrashRecoverRejoinsAndIsReadopted) {
  // Crash -> recover cycle: the node rejoins, catches up on the current
  // round, and recovery probes move its former primaries back onto it.
  PorygonSystem sys(Opts());
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(3);

  net::FaultPlan plan;
  const net::SimTime now = sys.events()->now();
  const net::NodeId victim = sys.storage_node(0)->net_id();
  plan.crashes.push_back({victim, now + net::FromMillis(500), false});
  plan.crashes.push_back({victim, now + net::FromSeconds(20), true});
  ASSERT_TRUE(sys.InjectFaults(plan).ok());
  sys.Run(9, net::FromSeconds(600));

  EXPECT_EQ(sys.metrics().committed_blocks(), 12u);
  ExpectCoreInvariants(sys);
  const auto* rejoins =
      sys.metrics_registry()->FindCounter("core.storage_rejoins", {});
  ASSERT_NE(rejoins, nullptr);
  EXPECT_EQ(rejoins->value(), 1u);
  const auto* readoptions =
      sys.metrics_registry()->FindCounter("core.failover.readoptions", {});
  ASSERT_NE(readoptions, nullptr);
  EXPECT_GT(readoptions->value(), 0u);
}

TEST(FaultInjectionTest, SameSeedSamePlanExportsAreByteIdentical) {
  // The injector draws from its own seeded streams, so two identical runs
  // under an active loss/dup/jitter plan inject the same faults at the same
  // points — and the metrics and trace exports match byte for byte.
  auto run = [] {
    SystemOptions opt = Opts();
    opt.trace.enabled = true;
    PorygonSystem sys(opt);
    sys.CreateAccounts(100, 10'000);
    auto plan = net::FaultPlan::Parse("loss:0.02,dup:0.02,jitter:300,seed:5");
    EXPECT_TRUE(plan.ok());
    EXPECT_TRUE(sys.InjectFaults(*plan).ok());
    for (uint64_t f = 1; f <= 10; ++f) {
      tx::Transaction t;
      t.from = f;
      t.to = f + 20;
      t.amount = 1;
      t.nonce = 0;
      sys.SubmitTransaction(t);
    }
    sys.Run(6, net::FromSeconds(600));
    const auto* losses = sys.metrics_registry()->FindCounter(
        "net.fault.injected", {{"type", "loss"}});
    EXPECT_NE(losses, nullptr);
    if (losses != nullptr) {
      EXPECT_GT(losses->value(), 0u);
    }
    return std::make_pair(sys.metrics().ToJson(),
                          sys.tracer()->ExportChromeJson());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(FaultInjectionTest, LateJoinerSeesConsistentChainTip) {
  // A fresh observer can verify the whole committed chain by hash links and
  // aggregated roots alone (what a new stateless node checks on join).
  PorygonSystem sys(Opts());
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 2;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(10);
  // The whole-chain verification (hash links + aggregated roots) is what
  // InvariantChecker::CheckChainIntegrity codifies; replay agreement covers
  // the canonical state once the pipeline drains.
  ExpectCoreInvariants(sys);
}

}  // namespace
}  // namespace porygon::core
