// Fault-injection coverage: network partitions and crashes against the
// protocol's liveness/safety claims (§V), plus witness-phase data
// availability (Challenge 2) at the message level.

#include <gtest/gtest.h>

#include "core/system.h"
#include "net/network.h"
#include "workload/generator.h"

namespace porygon::core {
namespace {

SystemOptions Opts() {
  SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  opt.params.block_tx_limit = 50;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  opt.num_stateless_nodes = 26;
  opt.oc_size = 4;
  opt.seed = 7;
  return opt;
}

TEST(FaultInjectionTest, CrashedStatelessNodesDontStallRounds) {
  PorygonSystem sys(Opts());
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  // Crash a couple of non-OC nodes mid-run (harsher than Byzantine-silent:
  // they also stop ACKing network deliveries).
  sys.Run(3);
  int crashed = 0;
  for (int i = 0; i < sys.num_stateless_nodes() && crashed < 3; ++i) {
    if (!sys.stateless_node(i)->in_oc()) {
      sys.network()->SetCrashed(sys.stateless_node(i)->net_id(), true);
      ++crashed;
    }
  }
  sys.Run(9);
  EXPECT_EQ(sys.metrics().committed_blocks(), 12u);  // Rounds keep closing.
  EXPECT_GT(sys.metrics().committed_intra_txs(), 0u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

TEST(FaultInjectionTest, WitnessPhaseBlocksUnavailableBodies) {
  // Every storage node withholds bodies AND drops routed traffic — far
  // beyond the paper's beta = 1/2 bound. No transaction can be witnessed,
  // so nothing ever commits; what matters is that nothing *incorrect*
  // commits either.
  SystemOptions opt = Opts();
  opt.malicious_storage_fraction = 1.0;
  PorygonSystem sys(opt);
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(8, net::FromSeconds(300));
  EXPECT_EQ(sys.metrics().committed_intra_txs(), 0u);
  EXPECT_EQ(sys.metrics().committed_cross_txs(), 0u);
  // Whatever blocks exist (if any) are empty ones.
  EXPECT_EQ(sys.metrics().empty_rounds(), sys.metrics().committed_blocks());
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

TEST(FaultInjectionTest, DropFilterCensorshipDegradesButDoesNotCorrupt) {
  // Randomly drop 20% of witness uploads at the network layer: some blocks
  // miss Tw and roll into later batches, but committed state stays
  // consistent (replay matches).
  PorygonSystem sys(Opts());
  sys.CreateAccounts(10'000, 100'000);
  Rng drop_rng(99);
  sys.network()->SetDropFilter([&drop_rng](const net::Message& m) {
    return m.kind == kMsgWitnessUpload && drop_rng.NextBernoulli(0.2);
  });
  workload::WorkloadGenerator gen(
      {.num_accounts = 10'000, .shard_bits = 1, .seed = 17});
  for (int r = 0; r < 12; ++r) {
    for (const auto& t : gen.Batch(150)) sys.SubmitTransaction(t);
    sys.Run(1);
  }
  EXPECT_GT(sys.metrics().committed_intra_txs() +
                sys.metrics().committed_cross_txs(),
            0u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);

  uint64_t total = 0;
  for (uint64_t id = 1; id <= 10'000; ++id) {
    total += sys.canonical_state().GetOrDefault(id).balance;
  }
  EXPECT_EQ(total, 10'000ull * 100'000ull);  // Censorship never mints/burns.
}

TEST(FaultInjectionTest, CrashedStorageMinorityIsRoutedAround) {
  // One of four storage nodes crashes outright. Stateless nodes whose
  // primary died lose their round feed, but nodes served by live storage
  // keep the system committing.
  SystemOptions opt = Opts();
  opt.num_storage_nodes = 4;
  PorygonSystem sys(opt);
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 16; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 1;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(2);
  sys.network()->SetCrashed(sys.storage_node(3)->net_id(), true);
  sys.Run(10, net::FromSeconds(300));
  EXPECT_GT(sys.metrics().committed_blocks(), 8u);
  EXPECT_GT(sys.metrics().committed_intra_txs(), 0u);
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

TEST(FaultInjectionTest, LateJoinerSeesConsistentChainTip) {
  // A fresh observer can verify the whole committed chain by hash links and
  // aggregated roots alone (what a new stateless node checks on join).
  PorygonSystem sys(Opts());
  sys.CreateAccounts(100, 10'000);
  for (uint64_t f = 1; f <= 10; ++f) {
    tx::Transaction t;
    t.from = f;
    t.to = f + 20;
    t.amount = 2;
    t.nonce = 0;
    sys.SubmitTransaction(t);
  }
  sys.Run(10);
  const auto& chain = sys.chain();
  for (size_t i = 1; i < chain.size(); ++i) {
    ASSERT_EQ(chain[i].prev_hash, chain[i - 1].Hash());
    if (!chain[i].shard_roots.empty()) {
      ASSERT_EQ(chain[i].state_root,
                state::ShardedState::AggregateRoots(chain[i].shard_roots));
    }
  }
  // And the canonical state agrees with the final committed roots once the
  // pipeline drains (last block's roots reflect executions two rounds back,
  // so compare against the matching cached roots instead of blind equality).
  EXPECT_EQ(sys.metrics().replay_mismatches(), 0u);
}

}  // namespace
}  // namespace porygon::core
