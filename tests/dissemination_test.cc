// Dissemination strategies (net/dissemination + the tree-mode actor paths):
// spec grammar, deterministic relay election, safety (tree commits the
// byte-identical chain and GlobalRoot of the same-seed direct run),
// thread-invariance of tree exports, and Byzantine/crashed relay
// degradation back to direct paths.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "core/adversary.h"
#include "core/system.h"
#include "net/dissemination.h"
#include "net/fault.h"
#include "net/network.h"
#include "obs/metrics.h"

namespace porygon {
namespace {

using core::PorygonSystem;
using core::SystemOptions;
using net::DisseminationMode;
using net::DisseminationSpec;

DisseminationSpec MustParse(const std::string& spec) {
  auto parsed = DisseminationSpec::Parse(spec);
  EXPECT_TRUE(parsed.ok()) << spec << ": " << parsed.status().message();
  return parsed.ok() ? *parsed : DisseminationSpec{};
}

// --- Spec grammar ---------------------------------------------------------

TEST(DisseminationSpecTest, ParsesAndRoundTrips) {
  DisseminationSpec direct = MustParse("direct");
  EXPECT_EQ(direct.mode, DisseminationMode::kDirect);
  EXPECT_FALSE(direct.tree());
  EXPECT_EQ(direct, DisseminationSpec{});

  DisseminationSpec tree = MustParse("tree");
  EXPECT_TRUE(tree.tree());
  EXPECT_EQ(tree.chunk_k, 4);
  EXPECT_EQ(tree.chunk_n, 6);
  EXPECT_EQ(tree.relay_strikes, 2);

  DisseminationSpec tuned = MustParse("tree,chunks:3/5,strikes:1");
  EXPECT_EQ(tuned.chunk_k, 3);
  EXPECT_EQ(tuned.chunk_n, 5);
  EXPECT_EQ(tuned.relay_strikes, 1);

  for (const DisseminationSpec& s : {direct, tree, tuned}) {
    EXPECT_EQ(MustParse(s.ToString()), s) << s.ToString();
    EXPECT_TRUE(s.Validate().ok()) << s.ToString();
  }
}

TEST(DisseminationSpecTest, RejectsMalformedClauses) {
  for (const char* bad : {
           "star",                // Unknown mode head.
           "",                    // Empty spec.
           "tree,chunks:4",       // Missing /n.
           "tree,chunks:a/b",     // Non-numeric geometry.
           "tree,strikes:zero",   // Non-numeric strikes.
           "tree,bogus:1",        // Unknown clause.
           "direct,chunks:3/5",   // Direct has nothing to configure.
           "direct,strikes:1",
           "tree,chunks:1/4",     // Out-of-range geometry (k < 2)...
           "tree,chunks:5/5",     // ...k not < n...
           "tree,chunks:4/300",   // ...n past the GF(2^8) cap...
           "tree,strikes:0",      // ...and strikes below 1.
       }) {
    auto parsed = DisseminationSpec::Parse(bad);
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << bad;
  }
  // A spec built programmatically (bypassing Parse) is still range-checked
  // through SystemOptions::Validate.
  SystemOptions opt;
  opt.dissemination = MustParse("tree");
  opt.dissemination.chunk_k = 1;
  EXPECT_TRUE(opt.Validate().IsInvalidArgument());
}

TEST(DisseminationSpecTest, RelayElectionIsDeterministicArithmetic) {
  // No member set of fewer than 2 elects a relay (aggregation through the
  // lone member would just add a hop).
  EXPECT_EQ(net::Dissemination::AggregatorIndex(0, 5, 0), -1);
  EXPECT_EQ(net::Dissemination::AggregatorIndex(1, 5, 0), -1);
  // Rotation by round, offset by stripe so co-resident flows (witness
  // stripe 0, exec stripe 1) land on different members.
  for (uint64_t round = 0; round < 12; ++round) {
    for (uint64_t stripe = 0; stripe < 2; ++stripe) {
      EXPECT_EQ(net::Dissemination::AggregatorIndex(5, round, stripe),
                static_cast<int>((round + stripe) % 5));
    }
  }
  const std::vector<net::NodeId> members = {10, 11, 12};
  EXPECT_EQ(net::Dissemination::AggregatorFor(members, 4, 0), 11u);
  EXPECT_EQ(net::Dissemination::AggregatorFor(members, 4, 1), 12u);
  EXPECT_EQ(net::Dissemination::AggregatorFor({}, 4, 0), net::kInvalidNode);
}

// --- System-level ---------------------------------------------------------

SystemOptions Opts() {
  SystemOptions opt;
  opt.params.shard_bits = 1;
  opt.params.witness_threshold = 2;
  opt.params.execution_threshold = 2;
  // Small blocks so every round carries two blocks per shard: multi-block
  // aggregates are what exercise relay merging (and what an equivocating
  // relay needs to tamper with).
  opt.params.block_tx_limit = 10;
  opt.params.storage_connections = 2;
  opt.num_storage_nodes = 2;
  // Per-shard EC cohorts of ~17: enough headroom for the 4/6 chunk mesh
  // and for honest majorities under alpha = 1/4.
  opt.num_stateless_nodes = 38;
  opt.oc_size = 4;
  opt.blocks_per_shard_round = 2;
  opt.seed = 7;
  return opt;
}

tx::Transaction Transfer(uint64_t from, uint64_t to, uint64_t amount,
                         uint64_t nonce) {
  tx::Transaction t;
  t.from = from;
  t.to = to;
  t.amount = amount;
  t.nonce = nonce;
  return t;
}

/// One deployment with a mixed intra/cross workload for 10 rounds.
/// `continuous` feeds fresh-sender batches every round (sustained
/// multi-block aggregates, many relay elections); the default submits
/// everything up front, which keeps tx->round assignment — and therefore
/// the chain — independent of strategy timing.
std::unique_ptr<PorygonSystem> RunWith(const std::string& dissemination,
                                       const std::string& adversary = "",
                                       const std::string& faults = "",
                                       int threads = 0,
                                       bool continuous = false) {
  SystemOptions opt = Opts();
  opt.worker_threads = threads;
  if (!dissemination.empty()) opt.dissemination = MustParse(dissemination);
  if (!adversary.empty()) {
    auto spec = core::AdversarySpec::Parse(adversary);
    EXPECT_TRUE(spec.ok()) << adversary;
    opt.adversary = *spec;
  }
  auto sys = std::make_unique<PorygonSystem>(opt);
  if (!faults.empty()) {
    auto plan = net::FaultPlan::Parse(faults);
    EXPECT_TRUE(plan.ok()) << faults;
    EXPECT_TRUE(sys->InjectFaults(*plan).ok());
  }
  sys->CreateAccounts(600, 10'000);
  const int submit_rounds = continuous ? 10 : 1;
  for (int r = 0; r < submit_rounds; ++r) {
    // Fresh senders each round (nonce 0 everywhere); 12 txs per shard per
    // round = two blocks per shard at limit 10.
    const uint64_t base = 1 + static_cast<uint64_t>(r) * 24;
    for (uint64_t f = base; f < base + 12; ++f) {
      // Same parity = same shard under 1 shard bit; +101 flips it.
      sys->SubmitTransaction(Transfer(f, f + 300, 1, 0));
      sys->SubmitTransaction(Transfer(f + 12, f + 101, 2, 0));
    }
    sys->Run(1, net::FromSeconds(600));
  }
  sys->Run(continuous ? 3 : 9, net::FromSeconds(600));
  return sys;
}

std::vector<crypto::Hash256> ChainHashes(const PorygonSystem& sys) {
  std::vector<crypto::Hash256> hashes;
  for (const auto& block : sys.chain()) hashes.push_back(block.Hash());
  return hashes;
}

uint64_t Evidence(const PorygonSystem& sys, const char* type) {
  const auto* c = sys.metrics_registry().FindCounter("adversary.evidence",
                                                     {{"type", type}});
  return c == nullptr ? 0 : c->value();
}

// The tentpole's safety bar: routing witness bundles, bodies, exec
// attestations, and votes through relays must not change WHAT commits —
// same seed, same chain, same final GlobalRoot as the direct star.
TEST(DisseminationTest, TreeCommitsTheSameChainAsDirect) {
  unsetenv("PORYGON_THREADS");
  auto direct = RunWith("direct");
  auto tree = RunWith("tree");
  ASSERT_GT(direct->metrics().committed_blocks(), 0u);
  ASSERT_GT(direct->metrics().committed_txs(), 0u);
  EXPECT_EQ(tree->metrics().committed_blocks(),
            direct->metrics().committed_blocks());
  EXPECT_EQ(tree->metrics().committed_txs(),
            direct->metrics().committed_txs());
  EXPECT_EQ(ChainHashes(*tree), ChainHashes(*direct));
  EXPECT_EQ(tree->canonical_state().GlobalRoot(),
            direct->canonical_state().GlobalRoot());
  EXPECT_EQ(tree->metrics().replay_mismatches(), 0u);
  EXPECT_EQ(direct->metrics().replay_mismatches(), 0u);
}

// An explicit "direct" spec is the default: identical exports, identical
// sim clock (the strategy abstraction adds zero behavior to the star).
TEST(DisseminationTest, ExplicitDirectSpecIsByteIdenticalToDefault) {
  unsetenv("PORYGON_THREADS");
  auto implicit = RunWith("");
  auto explicit_direct = RunWith("direct");
  EXPECT_EQ(explicit_direct->metrics().ToJson(), implicit->metrics().ToJson());
  EXPECT_EQ(explicit_direct->sim_seconds(), implicit->sim_seconds());
  EXPECT_EQ(explicit_direct->canonical_state().GlobalRoot(),
            implicit->canonical_state().GlobalRoot());
}

// Aggregated exports stay byte-identical across compute-pool widths: relay
// flush order, chunk reconstruction, and cert assembly are all driven by
// sim time, never by worker scheduling.
TEST(DisseminationTest, TreeExportsAreThreadInvariant) {
  unsetenv("PORYGON_THREADS");
  auto serial = RunWith("tree");
  const std::string metrics = serial->metrics().ToJson();
  const std::string reports = serial->critical_path().ReportsJson();
  for (int threads : {1, 4}) {
    auto run = RunWith("tree", "", "", threads);
    EXPECT_EQ(run->metrics().ToJson(), metrics) << threads << " threads";
    EXPECT_EQ(run->critical_path().ReportsJson(), reports)
        << threads << " threads";
    EXPECT_EQ(run->sim_seconds(), serial->sim_seconds())
        << threads << " threads";
  }
}

// Byzantine relays that equivocate (ship two different aggregates for the
// same batch) are caught by the leader's content-hash cross-check, leave
// attributable evidence, and cannot change what commits. Continuous load
// keeps multi-block aggregates flowing so many round-rotated relay
// elections land on corrupted nodes; the extra adversary traffic shifts
// round timing, so the safety bar is the committed tx set and final
// GlobalRoot rather than per-round block identity.
TEST(DisseminationTest, EquivocatingRelayLeavesEvidenceWithoutBreakingSafety) {
  unsetenv("PORYGON_THREADS");
  auto clean = RunWith("tree", "", "", 0, /*continuous=*/true);
  auto adv = RunWith("tree", "stateless:equivocate,alpha:0.25", "", 0,
                     /*continuous=*/true);
  EXPECT_GT(Evidence(*adv, "relay_equivocation"), 0u);
  EXPECT_GT(adv->adversary()->evidence(), 0u);
  // Safety and liveness: every transaction the clean run commits still
  // commits, and the honest nodes converge on the same final state.
  ASSERT_GT(clean->metrics().committed_txs(), 0u);
  EXPECT_EQ(adv->metrics().committed_txs(), clean->metrics().committed_txs());
  EXPECT_EQ(adv->canonical_state().GlobalRoot(),
            clean->canonical_state().GlobalRoot());
  EXPECT_EQ(adv->metrics().replay_mismatches(), 0u);
}

// Withholding relays (silent strategy drops every message, including relay
// duties) degrade their paths back to direct fan-out: rounds keep closing
// and the honest chain still commits.
TEST(DisseminationTest, SilentRelaysDegradeToDirectWithoutStalling) {
  unsetenv("PORYGON_THREADS");
  auto direct = RunWith("direct", "stateless:silent,alpha:0.25");
  auto tree = RunWith("tree", "stateless:silent,alpha:0.25");
  ASSERT_GT(direct->metrics().committed_blocks(), 0u);
  EXPECT_EQ(tree->metrics().committed_blocks(),
            direct->metrics().committed_blocks());
  EXPECT_EQ(ChainHashes(*tree), ChainHashes(*direct));
  EXPECT_EQ(tree->canonical_state().GlobalRoot(),
            direct->canonical_state().GlobalRoot());
  EXPECT_EQ(tree->metrics().replay_mismatches(), 0u);
}

// Crashed stateless nodes (which may hold relay elections for their shard)
// are skipped by the arithmetic election's crash check; the run stays live.
TEST(DisseminationTest, CrashedRelayFallsBackToDirectPaths) {
  unsetenv("PORYGON_THREADS");
  auto tree = RunWith("tree", "", "crash:4:1,crash:5:1");
  EXPECT_GT(tree->metrics().committed_blocks(), 0u);
  EXPECT_GT(tree->metrics().committed_txs(), 0u);
  EXPECT_EQ(tree->metrics().replay_mismatches(), 0u);
}

}  // namespace
}  // namespace porygon
