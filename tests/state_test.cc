// Sparse Merkle tree and sharded-state tests: proofs, roots, determinism,
// shard routing, and the OC's stateless root aggregation.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "state/account.h"
#include "state/sharded_state.h"
#include "state/smt.h"

namespace porygon::state {
namespace {

using crypto::Hash256;

TEST(AccountTest, EncodeDecodeRoundTrip) {
  Account a{12345, 67};
  auto decoded = DecodeAccount(EncodeAccount(a));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, a);
}

TEST(AccountTest, DecodeRejectsBadSizes) {
  EXPECT_FALSE(DecodeAccount(ToBytes("short")).ok());
  Bytes too_long(17, 0);
  EXPECT_FALSE(DecodeAccount(too_long).ok());
}

TEST(AccountTest, ShardAssignmentUsesLastBits) {
  EXPECT_EQ(ShardOfAccount(0b10110, 2), 0b10u);
  EXPECT_EQ(ShardOfAccount(0b10110, 3), 0b110u);
  EXPECT_EQ(ShardOfAccount(12345, 0), 0u);
}

TEST(SmtTest, EmptyTreeHasDeterministicRoot) {
  SparseMerkleTree a, b;
  EXPECT_EQ(a.Root(), b.Root());
  EXPECT_EQ(a.LeafCount(), 0u);
}

TEST(SmtTest, PutChangesRootDeleteRestoresIt) {
  SparseMerkleTree tree;
  Hash256 empty_root = tree.Root();
  tree.Put(42, ToBytes("value"));
  EXPECT_NE(tree.Root(), empty_root);
  tree.Delete(42);
  EXPECT_EQ(tree.Root(), empty_root);
  EXPECT_EQ(tree.LeafCount(), 0u);
}

TEST(SmtTest, GetReturnsStoredValue) {
  SparseMerkleTree tree;
  tree.Put(7, ToBytes("seven"));
  auto v = tree.Get(7);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, ToBytes("seven"));
  EXPECT_FALSE(tree.Get(8).ok());
}

TEST(SmtTest, RootIsOrderIndependent) {
  SparseMerkleTree a, b;
  a.Put(1, ToBytes("one"));
  a.Put(2, ToBytes("two"));
  a.Put(3, ToBytes("three"));
  b.Put(3, ToBytes("three"));
  b.Put(1, ToBytes("one"));
  b.Put(2, ToBytes("two"));
  EXPECT_EQ(a.Root(), b.Root());
}

TEST(SmtTest, MembershipProofVerifies) {
  SparseMerkleTree tree;
  tree.Put(100, ToBytes("alpha"));
  tree.Put(200, ToBytes("beta"));
  auto proof = tree.Prove(100);
  EXPECT_TRUE(
      SparseMerkleTree::Verify(tree.Root(), 100, ToBytes("alpha"), proof));
  // Wrong value fails.
  EXPECT_FALSE(
      SparseMerkleTree::Verify(tree.Root(), 100, ToBytes("gamma"), proof));
  // Wrong key fails.
  EXPECT_FALSE(
      SparseMerkleTree::Verify(tree.Root(), 101, ToBytes("alpha"), proof));
}

TEST(SmtTest, AbsenceProofVerifies) {
  SparseMerkleTree tree;
  tree.Put(100, ToBytes("alpha"));
  auto proof = tree.Prove(555);
  EXPECT_TRUE(SparseMerkleTree::Verify(tree.Root(), 555, ByteView(), proof));
  // Claiming a value for an absent key fails.
  EXPECT_FALSE(
      SparseMerkleTree::Verify(tree.Root(), 555, ToBytes("x"), proof));
}

TEST(SmtTest, TamperedProofRejected) {
  SparseMerkleTree tree;
  for (uint64_t k = 0; k < 50; ++k) {
    tree.Put(k * 977, ToBytes("v" + std::to_string(k)));
  }
  auto proof = tree.Prove(977);
  proof.siblings[30][5] ^= 0x01;
  EXPECT_FALSE(
      SparseMerkleTree::Verify(tree.Root(), 977, ToBytes("v1"), proof));
}

TEST(SmtTest, AdjacentKeysDoNotCollide) {
  // Keys differing in the lowest bit share all but the last sibling.
  SparseMerkleTree tree;
  tree.Put(8, ToBytes("even"));
  tree.Put(9, ToBytes("odd"));
  EXPECT_TRUE(SparseMerkleTree::Verify(tree.Root(), 8, ToBytes("even"),
                                       tree.Prove(8)));
  EXPECT_TRUE(SparseMerkleTree::Verify(tree.Root(), 9, ToBytes("odd"),
                                       tree.Prove(9)));
}

class SmtRandomTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmtRandomTest, MatchesReferenceAndProofsHold) {
  Rng rng(GetParam());
  SparseMerkleTree tree;
  std::map<uint64_t, std::string> reference;

  for (int op = 0; op < 500; ++op) {
    uint64_t key = rng.NextU64() % 1000;
    if (rng.NextBernoulli(0.3)) {
      tree.Delete(key);
      reference.erase(key);
    } else {
      std::string value = "v" + std::to_string(rng.NextU64() % 10000);
      tree.Put(key, ToBytes(value));
      reference[key] = value;
    }
  }

  EXPECT_EQ(tree.LeafCount(), reference.size());
  Hash256 root = tree.Root();
  for (const auto& [key, value] : reference) {
    auto stored = tree.Get(key);
    ASSERT_TRUE(stored.ok());
    EXPECT_EQ(*stored, ToBytes(value));
    EXPECT_TRUE(
        SparseMerkleTree::Verify(root, key, ToBytes(value), tree.Prove(key)));
  }
  // A rebuilt tree from the reference has the same root.
  SparseMerkleTree rebuilt;
  for (const auto& [key, value] : reference) rebuilt.Put(key, ToBytes(value));
  EXPECT_EQ(rebuilt.Root(), root);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtRandomTest, ::testing::Values(5, 6, 7));

class SmtBatchTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmtBatchTest, PutBatchMatchesSequentialPuts) {
  Rng rng(GetParam());
  SparseMerkleTree sequential, batched;
  // Pre-populate both identically.
  for (int i = 0; i < 50; ++i) {
    uint64_t k = rng.NextU64() % 400;
    Bytes v = ToBytes("init" + std::to_string(i));
    sequential.Put(k, v);
    batched.Put(k, v);
  }
  // Random batch with duplicates and deletions.
  std::vector<std::pair<uint64_t, Bytes>> writes;
  for (int i = 0; i < 200; ++i) {
    uint64_t k = rng.NextU64() % 400;
    Bytes v = rng.NextBernoulli(0.2) ? Bytes()
                                     : ToBytes("w" + std::to_string(i));
    writes.emplace_back(k, v);
  }
  for (const auto& [k, v] : writes) sequential.Put(k, v);
  batched.PutBatch(writes);

  EXPECT_EQ(sequential.Root(), batched.Root());
  EXPECT_EQ(sequential.LeafCount(), batched.LeafCount());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmtBatchTest, ::testing::Values(41, 42, 43));

TEST(ShardedStateTest, AccountsRouteToTheirShard) {
  ShardedState st(2);  // 4 shards.
  st.PutAccount(0b100, {10, 0});  // Shard 0.
  st.PutAccount(0b101, {20, 0});  // Shard 1.
  st.PutAccount(0b110, {30, 0});  // Shard 2.
  EXPECT_EQ(st.ShardAccountCount(0), 1u);
  EXPECT_EQ(st.ShardAccountCount(1), 1u);
  EXPECT_EQ(st.ShardAccountCount(2), 1u);
  EXPECT_EQ(st.ShardAccountCount(3), 0u);
  EXPECT_EQ(st.TotalAccountCount(), 3u);
  EXPECT_EQ(st.GetOrDefault(0b101).balance, 20u);
  EXPECT_EQ(st.GetOrDefault(0xdead00).balance, 0u);  // Default.
}

TEST(ShardedStateTest, GlobalRootMatchesAggregatedShardRoots) {
  ShardedState st(3);
  Rng rng(77);
  for (int i = 0; i < 100; ++i) {
    st.PutAccount(rng.NextU64() % 5000, {rng.NextU64() % 1000, 0});
  }
  std::vector<Hash256> roots;
  for (int s = 0; s < st.shard_count(); ++s) roots.push_back(st.ShardRoot(s));
  EXPECT_EQ(ShardedState::AggregateRoots(roots), st.GlobalRoot());
}

TEST(ShardedStateTest, UpdateInOneShardOnlyChangesThatShardRoot) {
  ShardedState st(2);
  st.PutAccount(4, {1, 0});   // Shard 0.
  st.PutAccount(5, {1, 0});   // Shard 1.
  auto root0_before = st.ShardRoot(0);
  auto root1_before = st.ShardRoot(1);
  st.PutAccount(8, {99, 0});  // Shard 0 again.
  EXPECT_NE(st.ShardRoot(0), root0_before);
  EXPECT_EQ(st.ShardRoot(1), root1_before);
}

TEST(ShardedStateTest, AccountProofsVerifyAgainstShardRoot) {
  ShardedState st(2);
  Account acc{500, 3};
  st.PutAccount(42, acc);
  auto proof = st.ProveAccount(42);
  uint32_t shard = st.ShardOf(42);
  EXPECT_TRUE(ShardedState::VerifyAccount(st.ShardRoot(shard), 42, acc, proof));
  Account wrong{501, 3};
  EXPECT_FALSE(
      ShardedState::VerifyAccount(st.ShardRoot(shard), 42, wrong, proof));
  // Absence of another account in the same shard.
  auto absent = st.ProveAccount(42 + 4);  // Same shard (same last 2 bits).
  EXPECT_TRUE(
      ShardedState::VerifyAbsence(st.ShardRoot(shard), 42 + 4, absent));
}

TEST(ShardedStateTest, AggregateRootsHandlesOddCounts) {
  std::vector<Hash256> one{crypto::Sha256::Hash(ToBytes("a"))};
  EXPECT_EQ(ShardedState::AggregateRoots(one), one[0]);
  std::vector<Hash256> three{crypto::Sha256::Hash(ToBytes("a")),
                             crypto::Sha256::Hash(ToBytes("b")),
                             crypto::Sha256::Hash(ToBytes("c"))};
  // Just determinism and no crash.
  EXPECT_EQ(ShardedState::AggregateRoots(three),
            ShardedState::AggregateRoots(three));
}

}  // namespace
}  // namespace porygon::state
